(* Tests for the CORFU shared log: headers, storage nodes, sequencer,
   chain replication, streams, and reconfiguration. *)

open Corfu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let payload s = Bytes.of_string s
let payload_str (e : Types.entry) = Bytes.to_string e.Types.payload

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* Run a simulation body against a fresh cluster. *)
let with_cluster ?(seed = 11) ?(servers = 4) ?(chain_length = 2) body =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Cluster.create ~servers ~chain_length () in
      body cluster)

(* ------------------------------------------------------------------ *)
(* Stream headers                                                     *)
(* ------------------------------------------------------------------ *)

let test_header_relative_roundtrip () =
  let h = { Stream_header.stream = 42; backptrs = [ 99; 80; 51; 7 ] } in
  let block = Stream_header.encode_block ~k:4 ~current:100 [ h ] in
  check_int "block size" 13 (Bytes.length block);
  let decoded = Stream_header.decode_block ~k:4 ~current:100 block in
  Alcotest.(check int) "one header" 1 (List.length decoded);
  let d = List.hd decoded in
  check_int "stream" 42 d.Stream_header.stream;
  Alcotest.(check (list int)) "backptrs" [ 99; 80; 51; 7 ] d.Stream_header.backptrs

let test_header_absolute_when_overflow () =
  (* A delta above 64K entries forces the absolute format, which keeps
     only K/4 pointers. *)
  let h = { Stream_header.stream = 7; backptrs = [ 200_000; 50; 49; 48 ] } in
  check_bool "absolute" true (Stream_header.uses_absolute_format ~current:300_000 h);
  let block = Stream_header.encode_block ~k:4 ~current:300_000 [ h ] in
  check_int "same size" 13 (Bytes.length block);
  let d = List.hd (Stream_header.decode_block ~k:4 ~current:300_000 block) in
  Alcotest.(check (list int)) "only K/4 kept" [ 200_000 ] d.Stream_header.backptrs

let test_header_relative_boundary () =
  (* Delta of exactly 65535 still fits the relative format. *)
  let h = { Stream_header.stream = 1; backptrs = [ 1 ] } in
  check_bool "fits" false (Stream_header.uses_absolute_format ~current:65_536 h);
  check_bool "overflows" true (Stream_header.uses_absolute_format ~current:65_537 h)

let test_header_empty_backptrs () =
  let h = { Stream_header.stream = 3; backptrs = [] } in
  let block = Stream_header.encode_block ~k:4 ~current:0 [ h ] in
  let d = List.hd (Stream_header.decode_block ~k:4 ~current:0 block) in
  Alcotest.(check (list int)) "empty" [] d.Stream_header.backptrs

let test_header_multi_stream_block () =
  let hs =
    [
      { Stream_header.stream = 1; backptrs = [ 9; 8 ] };
      { Stream_header.stream = 2; backptrs = [ 5 ] };
      { Stream_header.stream = 0x7FFF_FFFF; backptrs = [] };
    ]
  in
  let block = Stream_header.encode_block ~k:4 ~current:10 hs in
  check_int "3 headers, 12B each" 37 (Bytes.length block);
  let d = Stream_header.decode_block ~k:4 ~current:10 block in
  check_int "count" 3 (List.length d);
  check_int "find stream 2" 5
    (List.hd (Option.get (Stream_header.find d 2)).Stream_header.backptrs);
  check_bool "missing stream" true (Stream_header.find d 99 = None)

let test_header_rejects_bad_ids () =
  let bad = { Stream_header.stream = 0x8000_0000; backptrs = [] } in
  (match Stream_header.encode_block ~k:4 ~current:1 [ bad ] with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  let forward = { Stream_header.stream = 1; backptrs = [ 5 ] } in
  match Stream_header.encode_block ~k:4 ~current:5 [ forward ] with
  | _ -> Alcotest.fail "backpointer at/after entry must be rejected"
  | exception Invalid_argument _ -> ()

let test_header_rejects_bad_k () =
  match Stream_header.encode_block ~k:3 ~current:1 [] with
  | _ -> Alcotest.fail "k=3 must be rejected"
  | exception Invalid_argument _ -> ()

let prop_header_roundtrip =
  QCheck.Test.make ~name:"header block roundtrip (relative and absolute)" ~count:300
    QCheck.(
      pair (int_range 1 1_000_000)
        (small_list (pair (int_range 0 1000) (int_range 1 200_000))))
    (fun (current, raw) ->
      let k = 4 in
      let headers =
        (* Build valid, strictly-descending backpointers below current;
           dedupe stream ids. *)
        raw
        |> List.mapi (fun i (sid, spread) ->
               let sid = sid + (i * 1001) in
               let ptrs =
                 List.filter (fun p -> p >= 0 && p < current)
                   [ current - 1; current - (spread / 2) - 1; current - spread - 1 ]
                 |> List.sort_uniq compare |> List.rev
               in
               { Stream_header.stream = sid; backptrs = ptrs })
      in
      if List.length headers > 255 then true
      else
        let block = Stream_header.encode_block ~k ~current headers in
        let decoded = Stream_header.decode_block ~k ~current block in
        List.for_all2
          (fun (a : Stream_header.t) (b : Stream_header.t) ->
            a.stream = b.stream
            &&
            if Stream_header.uses_absolute_format ~current a then
              (* absolute keeps the first K/4 pointers *)
              b.backptrs
              = List.filteri (fun i _ -> i < k / 4) a.backptrs
            else b.backptrs = a.backptrs)
          headers decoded)

(* ------------------------------------------------------------------ *)
(* Storage node                                                       *)
(* ------------------------------------------------------------------ *)

let with_node body =
  Sim.Engine.run (fun () ->
      let params = Sim.Params.default in
      let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
      let node = Storage_node.create ~net ~name:"n0" ~params () in
      let me = Sim.Net.add_host net "tester" in
      let write ?(epoch = 0) off cell =
        Sim.Net.call ~from:me (Storage_node.write_service node)
          { Storage_node.wepoch = epoch; woffset = off; wcell = cell }
      in
      let read ?(epoch = 0) off =
        Sim.Net.call ~from:me (Storage_node.read_service node)
          { Storage_node.repoch = epoch; roffset = off }
      in
      body node write read me)

let entry s = Types.Data { Types.headers = Bytes.empty; payload = payload s }

let test_node_write_once () =
  with_node (fun _ write read _ ->
      check_bool "first write ok" true (write 5 (entry "a") = Types.Write_ok);
      (match write 5 (entry "b") with
      | Types.Already_written (Types.Data e) -> check_string "winner kept" "a" (payload_str e)
      | _ -> Alcotest.fail "expected write-once conflict");
      match read 5 with
      | Types.Read_data e -> check_string "read back" "a" (payload_str e)
      | _ -> Alcotest.fail "expected data")

let test_node_unwritten_read () =
  with_node (fun _ _ read _ ->
      check_bool "unwritten" true (read 0 = Types.Read_unwritten))

let test_node_fill_semantics () =
  with_node (fun _ write read _ ->
      check_bool "fill empty" true (write 3 Types.Junk = Types.Write_ok);
      check_bool "fill idempotent" true (write 3 Types.Junk = Types.Write_ok);
      check_bool "junk visible" true (read 3 = Types.Read_junk);
      (* data loses to junk *)
      match write 3 (entry "late") with
      | Types.Already_written Types.Junk -> ()
      | _ -> Alcotest.fail "late writer must lose to junk")

let test_node_seal_rejects_stale_epochs () =
  with_node (fun node write read me ->
      check_bool "w" true (write 0 (entry "x") = Types.Write_ok);
      let tail = Sim.Net.call ~from:me (Storage_node.seal_service node) 2 in
      check_int "local tail returned" 0 tail;
      check_int "sealed" 2 (Storage_node.sealed_epoch node);
      (match write ~epoch:1 1 (entry "y") with
      | Types.Sealed_at 2 -> ()
      | _ -> Alcotest.fail "stale write must be rejected");
      (match read ~epoch:0 0 with
      | Types.Read_sealed 2 -> ()
      | _ -> Alcotest.fail "stale read must be rejected");
      (* current-epoch ops pass *)
      check_bool "new epoch write" true (write ~epoch:2 1 (entry "y") = Types.Write_ok))

let test_node_trim () =
  with_node (fun node write read me ->
      check_bool "w" true (write 4 (entry "x") = Types.Write_ok);
      Sim.Net.call ~from:me (Storage_node.trim_service node)
        { Storage_node.repoch = 0; roffset = 4 };
      check_bool "trimmed" true (read 4 = Types.Read_trimmed);
      match write 4 (entry "again") with
      | Types.Already_written Types.Trimmed -> ()
      | _ -> Alcotest.fail "write to trimmed must fail")

let test_node_prefix_trim () =
  with_node (fun node write read me ->
      for i = 0 to 9 do
        check_bool "w" true (write i (entry (string_of_int i)) = Types.Write_ok)
      done;
      Sim.Net.call ~from:me (Storage_node.prefix_trim_service node)
        { Storage_node.repoch = 0; roffset = 7 };
      check_int "watermark" 7 (Storage_node.trimmed_below node);
      check_bool "below gone" true (read 3 = Types.Read_trimmed);
      match read 8 with
      | Types.Read_data _ -> ()
      | _ -> Alcotest.fail "above watermark must survive")

let test_node_local_tail () =
  with_node (fun node write _ me ->
      check_int "empty tail" (-1)
        (Sim.Net.call ~from:me (Storage_node.tail_service node) ());
      ignore (write 2 (entry "a"));
      ignore (write 7 (entry "b"));
      check_int "tail" 7 (Sim.Net.call ~from:me (Storage_node.tail_service node) ()))

let test_node_capacity () =
  Sim.Engine.run (fun () ->
      let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
      let node =
        Storage_node.create ~net ~name:"n" ~params:Sim.Params.default ~capacity_entries:2 ()
      in
      let me = Sim.Net.add_host net "tester" in
      let w off =
        Sim.Net.call ~from:me (Storage_node.write_service node)
          { Storage_node.wepoch = 0; woffset = off; wcell = entry "x" }
      in
      check_bool "in space" true (w 1 = Types.Write_ok);
      check_bool "out of space" true (w 2 = Types.Out_of_space))

(* ------------------------------------------------------------------ *)
(* Sequencer                                                          *)
(* ------------------------------------------------------------------ *)

let with_sequencer body =
  Sim.Engine.run (fun () ->
      let params = Sim.Params.default in
      let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
      let seq = Sequencer.create ~net ~name:"seq" ~params () in
      let me = Sim.Net.add_host net "tester" in
      let incr ?(epoch = 0) ?(count = 1) streams =
        Sim.Net.call ~from:me (Sequencer.increment_service seq)
          { Sequencer.iepoch = epoch; istreams = streams; icount = count }
      in
      let peek ?(epoch = 0) streams =
        Sim.Net.call ~from:me (Sequencer.peek_service seq)
          { Sequencer.pepoch = epoch; pstreams = streams }
      in
      body seq incr peek me)

let alloc = function
  | Sequencer.Seq_ok a -> a
  | Sequencer.Seq_sealed _ -> Alcotest.fail "unexpectedly sealed"

let test_sequencer_monotonic () =
  with_sequencer (fun _ incr _ _ ->
      let a = alloc (incr []) in
      let b = alloc (incr []) in
      let c = alloc (incr []) in
      Alcotest.(check (list int)) "consecutive" [ 0; 1; 2 ]
        [ a.Sequencer.base; b.Sequencer.base; c.Sequencer.base ])

let test_sequencer_stream_backpointers () =
  with_sequencer (fun _ incr _ _ ->
      let a = alloc (incr [ 7 ]) in
      Alcotest.(check (list int)) "no history" []
        (List.assoc 7 a.Sequencer.stream_tails);
      let b = alloc (incr [ 7 ]) in
      Alcotest.(check (list int)) "one" [ 0 ] (List.assoc 7 b.Sequencer.stream_tails);
      for _ = 1 to 5 do
        ignore (incr [ 7 ])
      done;
      let z = alloc (incr [ 7 ]) in
      (* K = 4 most recent, newest first *)
      Alcotest.(check (list int)) "last K" [ 6; 5; 4; 3 ]
        (List.assoc 7 z.Sequencer.stream_tails))

let test_sequencer_peek_does_not_advance () =
  with_sequencer (fun seq incr peek _ ->
      ignore (incr [ 1 ]);
      let p1 = alloc (peek [ 1 ]) in
      let p2 = alloc (peek [ 1 ]) in
      check_int "tail stable" p1.Sequencer.base p2.Sequencer.base;
      check_int "tail value" 1 p1.Sequencer.base;
      Alcotest.(check (list int)) "stream tail" [ 0 ] (List.assoc 1 p1.Sequencer.stream_tails);
      check_int "state" 1 (Sequencer.current_tail seq))

let test_sequencer_batched_allocation () =
  with_sequencer (fun seq incr _ _ ->
      let a = alloc (incr ~count:4 []) in
      check_int "base" 0 a.Sequencer.base;
      let b = alloc (incr []) in
      check_int "skipped batch" 4 b.Sequencer.base;
      check_int "tail" 5 (Sequencer.current_tail seq))

let test_sequencer_range_grant_records_streams () =
  (* A multi-offset grant must record every granted offset on every
     requested stream, so later backpointer state stays exact. *)
  with_sequencer (fun seq incr peek _ ->
      let g = alloc (incr ~count:3 [ 7; 8 ]) in
      check_int "grant base" 0 g.Sequencer.base;
      Alcotest.(check (list int)) "no history yet" [] (List.assoc 7 g.Sequencer.stream_tails);
      let a = alloc (incr [ 7 ]) in
      Alcotest.(check (list int)) "all granted offsets on 7" [ 2; 1; 0 ]
        (List.assoc 7 a.Sequencer.stream_tails);
      let b = alloc (incr [ 8 ]) in
      Alcotest.(check (list int)) "offset 3 went to 7 only" [ 2; 1; 0 ]
        (List.assoc 8 b.Sequencer.stream_tails);
      let c = alloc (incr ~count:2 [ 7 ]) in
      check_int "grants stay consecutive" 5 c.Sequencer.base;
      Alcotest.(check (list int)) "truncated to K" [ 3; 2; 1; 0 ]
        (List.assoc 7 c.Sequencer.stream_tails);
      let p = alloc (peek [ 7 ]) in
      Alcotest.(check (list int)) "second grant recorded, newest first" [ 6; 5; 3; 2 ]
        (List.assoc 7 p.Sequencer.stream_tails);
      check_int "tail" 7 (Sequencer.current_tail seq))

let test_sequencer_seal () =
  with_sequencer (fun seq incr _ me ->
      ignore (incr []);
      ignore (Sim.Net.call ~from:me (Sequencer.seal_service seq) 3 : Types.offset);
      (match incr ~epoch:2 [] with
      | Sequencer.Seq_sealed 3 -> ()
      | _ -> Alcotest.fail "stale increment must be rejected");
      match incr ~epoch:3 [] with
      | Sequencer.Seq_ok _ -> ()
      | _ -> Alcotest.fail "current epoch must pass")

let test_sequencer_seeded_state () =
  Sim.Engine.run (fun () ->
      let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
      let seq =
        Sequencer.create ~net ~name:"seq" ~params:Sim.Params.default ~initial_tail:100
          ~initial_streams:[ (5, [ 90; 80 ]) ] ()
      in
      let me = Sim.Net.add_host net "tester" in
      let r =
        alloc
          (Sim.Net.call ~from:me (Sequencer.increment_service seq)
             { Sequencer.iepoch = 0; istreams = [ 5 ]; icount = 1 })
      in
      check_int "resumes tail" 100 r.Sequencer.base;
      Alcotest.(check (list int)) "resumes streams" [ 90; 80 ]
        (List.assoc 5 r.Sequencer.stream_tails);
      check_bool "state bytes" true (Sequencer.state_bytes seq = 32))

let spawn_increment_loop host seq n =
  Sim.Engine.spawn (fun () ->
      let rec loop () =
        let (_ : Sequencer.response) =
          Sim.Net.call ~from:host (Sequencer.increment_service seq)
            { Sequencer.iepoch = 0; istreams = []; icount = 1 }
        in
        incr n;
        loop ()
      in
      loop ())

let test_sequencer_throughput_cap () =
  (* Saturated sequencer plateaus near 1/service_time = ~570K/s. *)
  let rate =
    Sim.Engine.run (fun () ->
        let params = Sim.Params.default in
        let net = Sim.Net.create ~latency:50. ~bandwidth:125. ~jitter:0. () in
        let seq = Sequencer.create ~net ~name:"seq" ~params () in
        let n = ref 0 in
        for i = 1 to 80 do
          let host = Sim.Net.add_host net (Printf.sprintf "c%d" i) in
          spawn_increment_loop host seq n
        done;
        Sim.Engine.sleep 100_000.;
        float_of_int !n /. 0.1 (* per second *))
  in
  check_bool "plateau near 570K" true (rate > 480_000. && rate < 600_000.)

(* ------------------------------------------------------------------ *)
(* Projection                                                         *)
(* ------------------------------------------------------------------ *)

let test_projection_mapping () =
  with_cluster ~servers:6 (fun cluster ->
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      check_int "sets" 3 (Projection.num_sets proj);
      check_int "servers" 6 (Projection.num_servers proj);
      (* offset o -> set o mod 3, local o / 3 *)
      check_int "local of 7" 2 (Projection.local_offset proj 7);
      check_int "roundtrip" 7 (Projection.global_offset proj ~seg:0 ~set:(7 mod 3) ~local:2))

let test_projection_global_tail () =
  with_cluster ~servers:4 (fun cluster ->
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      (* set 0 wrote locals 0..2 (globals 0,2,4), set 1 wrote 0..1
         (globals 1,3): highest global is 4, tail is 5. *)
      check_int "tail" 5 (Projection.global_tail_from_locals proj [| 2; 1 |]);
      check_int "empty" 0 (Projection.global_tail_from_locals proj [| -1; -1 |]))

let test_projection_validation () =
  Sim.Engine.run (fun () ->
      let params = Sim.Params.default in
      let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
      let n1 = Storage_node.create ~net ~name:"n1" ~params () in
      let n2 = Storage_node.create ~net ~name:"n2" ~params () in
      let n3 = Storage_node.create ~net ~name:"n3" ~params () in
      let seq = Sequencer.create ~net ~name:"s" ~params () in
      (match Projection.flat ~epoch:0 ~replica_sets:[||] ~sequencer:seq with
      | _ -> Alcotest.fail "empty projection must be rejected"
      | exception Invalid_argument _ -> ());
      (match Projection.flat ~epoch:0 ~replica_sets:[| [| n1; n2 |]; [||] |] ~sequencer:seq with
      | _ -> Alcotest.fail "empty replica set must be rejected"
      | exception Invalid_argument _ -> ());
      (* Ragged chains are now legal geometry (explicit ~chains). *)
      let ragged = Projection.flat ~epoch:0 ~replica_sets:[| [| n1; n2 |]; [| n3 |] |] ~sequencer:seq in
      check_int "ragged projection accepted" 2 (Projection.num_sets ragged);
      (match Cluster.create ~servers:3 ~chain_length:2 () with
      | _ -> Alcotest.fail "odd server count without ~chains must be rejected"
      | exception Invalid_argument msg ->
          check_bool "error names the fix" true
            (string_contains msg "~chains"));
      (* ... but the same server count with explicit geometry works. *)
      let uneven = Cluster.create ~servers:3 ~chains:[ 2; 1 ] () in
      check_int "uneven cluster" 3 (Projection.num_servers (Auxiliary.latest (Cluster.auxiliary uneven))))

(* ------------------------------------------------------------------ *)
(* Client: append / read / check / fill                               *)
(* ------------------------------------------------------------------ *)

let test_client_append_read () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app-0" in
      let o0 = Client.append c ~streams:[ 1 ] (payload "hello") in
      let o1 = Client.append c ~streams:[ 1 ] (payload "world") in
      check_int "first offset" 0 o0;
      check_int "second offset" 1 o1;
      (match Client.read c o0 with
      | Client.Data e -> check_string "payload" "hello" (payload_str e)
      | _ -> Alcotest.fail "expected data");
      check_int "check" 2 (Client.check c))

let test_client_two_clients_interleave () =
  with_cluster (fun cluster ->
      let a = Cluster.new_client cluster ~name:"app-a" in
      let b = Cluster.new_client cluster ~name:"app-b" in
      let offsets = ref [] in
      (* Bind the append before touching [offsets]: the call suspends
         the fiber, and reading [!offsets] across the suspension would
         lose the other fiber's updates. *)
      let run_client tag client =
        Sim.Engine.spawn (fun () ->
            for i = 0 to 4 do
              let off =
                Client.append client ~streams:[ 1 ] (payload (Printf.sprintf "%s%d" tag i))
              in
              offsets := (tag, off) :: !offsets
            done)
      in
      run_client "a" a;
      run_client "b" b;
      Sim.Engine.sleep 1_000_000.;
      let all = List.map snd !offsets in
      check_int "ten appends" 10 (List.length all);
      Alcotest.(check (list int)) "all offsets distinct, 0..9" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.sort compare all))

let test_client_check_slow_matches_fast () =
  with_cluster ~servers:6 (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      for i = 0 to 13 do
        ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      check_int "fast" 14 (Client.check c);
      check_int "slow agrees" 14 (Client.check_slow c))

let test_client_fill_hole () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      (* Simulate a crashed writer: take an offset, never write it. *)
      let resp =
        Sim.Net.call ~from:(Client.host c)
          (Sequencer.increment_service (Cluster.sequencer cluster))
          { Sequencer.iepoch = 0; istreams = [ 1 ]; icount = 1 }
      in
      let hole = (alloc resp).Sequencer.base in
      let after = Client.append c ~streams:[ 1 ] (payload "alive") in
      check_bool "hole below" true (hole < after);
      check_bool "unwritten" true (Client.read c hole = Client.Unwritten);
      (match Client.fill c hole with
      | Client.Filled -> ()
      | _ -> Alcotest.fail "expected junk fill");
      check_bool "junk now" true (Client.read c hole = Client.Junk);
      (* the dead writer's late write must lose *)
      check_bool "late writer loses" true (Client.read c hole = Client.Junk))

let test_client_fill_completes_torn_append () =
  (* Write the head replica only, then let a fill repair the chain
     with the original data rather than junk. *)
  with_cluster ~servers:2 (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let proj = Client.projection c in
      let resp =
        Sim.Net.call ~from:(Client.host c)
          (Sequencer.increment_service (Cluster.sequencer cluster))
          { Sequencer.iepoch = 0; istreams = []; icount = 1 }
      in
      let off = (alloc resp).Sequencer.base in
      let head = (Projection.replica_set proj off).(0) in
      let entry = { Types.headers = Bytes.empty; payload = payload "torn" } in
      (match
         Sim.Net.call ~from:(Client.host c) (Storage_node.write_service head)
           { Storage_node.wepoch = 0; woffset = Projection.local_offset proj off;
             wcell = Types.Data entry }
       with
      | Types.Write_ok -> ()
      | _ -> Alcotest.fail "head write failed");
      (match Client.fill c off with
      | Client.Fill_completed e -> check_string "repaired data" "torn" (payload_str e)
      | _ -> Alcotest.fail "fill should complete the torn append");
      match Client.read c off with
      | Client.Data e -> check_string "readable everywhere" "torn" (payload_str e)
      | _ -> Alcotest.fail "expected data after repair")

let test_client_read_resolved_waits_for_slow_writer () =
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let r = Cluster.new_client cluster ~name:"reader" in
      Sim.Engine.spawn (fun () ->
          Sim.Engine.sleep 500.;
          ignore (Client.append w ~streams:[ 1 ] (payload "slow")));
      (* Reader learns offset 0 will exist only after writer appends;
         block on offset 0 before it's durable. *)
      Sim.Engine.sleep 600.;
      match Client.read_resolved r 0 with
      | Client.Data e -> check_string "got it" "slow" (payload_str e)
      | _ -> Alcotest.fail "expected data")

let test_client_trim_and_prefix_trim () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      for i = 0 to 9 do
        ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      Client.trim c 4;
      check_bool "trimmed" true (Client.read c 4 = Client.Trimmed);
      Client.prefix_trim c 8;
      check_bool "below gone" true (Client.read c 7 = Client.Trimmed);
      (match Client.read c 8 with
      | Client.Data _ -> ()
      | _ -> Alcotest.fail "8 must survive");
      match Client.read c 9 with
      | Client.Data _ -> ()
      | _ -> Alcotest.fail "9 must survive")

(* ------------------------------------------------------------------ *)
(* Streams                                                            *)
(* ------------------------------------------------------------------ *)

let drain stream =
  let rec go acc =
    match Stream.readnext stream with
    | Some (off, e) -> go ((off, payload_str e) :: acc)
    | None -> List.rev acc
  in
  go []

let test_stream_basic_playback () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let s = Stream.attach c 1 in
      let offs = List.init 5 (fun i -> Stream.append s (payload (Printf.sprintf "e%d" i))) in
      let tail = Stream.sync s in
      check_int "tail" 5 tail;
      let got = drain s in
      Alcotest.(check (list (pair int string)))
        "in order"
        (List.mapi (fun i o -> (o, Printf.sprintf "e%d" i)) offs)
        got;
      check_bool "drained" true (Stream.readnext s = None))

let test_stream_selective_consumption () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let sa = Stream.attach c 1 in
      let sb = Stream.attach c 2 in
      for i = 0 to 9 do
        let sid = if i mod 3 = 0 then 2 else 1 in
        ignore (Client.append c ~streams:[ sid ] (payload (Printf.sprintf "%d" i)))
      done;
      ignore (Stream.sync sa);
      ignore (Stream.sync sb);
      Alcotest.(check (list string)) "stream 1 skips stream 2"
        [ "1"; "2"; "4"; "5"; "7"; "8" ]
        (List.map snd (drain sa));
      Alcotest.(check (list string)) "stream 2" [ "0"; "3"; "6"; "9" ] (List.map snd (drain sb)))

let test_stream_multiappend_visible_on_all () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let sa = Stream.attach c 1 in
      let sb = Stream.attach c 2 in
      ignore (Client.append c ~streams:[ 1 ] (payload "only-a"));
      let shared = Client.append c ~streams:[ 1; 2 ] (payload "both") in
      ignore (Client.append c ~streams:[ 2 ] (payload "only-b"));
      ignore (Stream.sync sa);
      ignore (Stream.sync sb);
      let a = drain sa and b = drain sb in
      Alcotest.(check (list string)) "a" [ "only-a"; "both" ] (List.map snd a);
      Alcotest.(check (list string)) "b" [ "both"; "only-b" ] (List.map snd b);
      let offset_of entries p = fst (List.find (fun (_, q) -> q = p) entries) in
      check_int "same physical entry on a" shared (offset_of a "both");
      check_int "same physical entry on b" shared (offset_of b "both"))

let test_stream_incremental_sync () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let s = Stream.attach c 1 in
      ignore (Stream.append s (payload "a"));
      ignore (Stream.sync s);
      Alcotest.(check (list string)) "first batch" [ "a" ] (List.map snd (drain s));
      ignore (Stream.append s (payload "b"));
      ignore (Stream.append s (payload "c"));
      check_bool "nothing before sync" true (Stream.readnext s = None);
      ignore (Stream.sync s);
      Alcotest.(check (list string)) "second batch" [ "b"; "c" ] (List.map snd (drain s)))

let test_stream_reader_on_other_client () =
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let r = Cluster.new_client cluster ~name:"reader" in
      let sw = Stream.attach w 9 in
      for i = 0 to 19 do
        ignore (Stream.append sw (payload (string_of_int i)))
      done;
      let sr = Stream.attach r 9 in
      ignore (Stream.sync sr);
      Alcotest.(check (list string)) "remote playback"
        (List.init 20 string_of_int)
        (List.map snd (drain sr)))

let test_stream_sync_reads_stride_k () =
  (* Building the list for an N-entry stream should take ~N/K reads
     (plus the K pointers from the sequencer), not N. *)
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let sw = Stream.attach w 3 in
      let n = 64 in
      for i = 0 to n - 1 do
        ignore (Stream.append sw (payload (string_of_int i)))
      done;
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 3 in
      ignore (Stream.sync sr);
      let reads = Stream.sync_reads sr in
      check_bool
        (Printf.sprintf "stride reads %d for %d entries" reads n)
        true
        (reads <= (n / 4) + 2);
      check_int "membership complete" n (Stream.pending sr))

let test_append_range_visible_in_order () =
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let payloads = List.init 5 (fun i -> payload (Printf.sprintf "r%d" i)) in
      let offs = Client.append_range w ~streams:[ 1; 2 ] payloads in
      Alcotest.(check (list int)) "granted offsets, payload order" [ 0; 1; 2; 3; 4 ] offs;
      let r = Cluster.new_client cluster ~name:"reader" in
      let expect = List.mapi (fun i o -> (o, Printf.sprintf "r%d" i)) offs in
      List.iter
        (fun sid ->
          let s = Stream.attach r sid in
          ignore (Stream.sync s);
          Alcotest.(check (list (pair int string)))
            (Printf.sprintf "stream %d sees the range in order" sid)
            expect (drain s))
        [ 1; 2 ])

let test_append_range_chains_stay_strided () =
  (* Entries written through grants carry exact backpointers, so a
     fresh reader still builds membership in ~N/K reads. *)
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let n = 32 in
      for b = 0 to (n / 4) - 1 do
        ignore
          (Client.append_range w ~streams:[ 3 ]
             (List.init 4 (fun i -> payload (string_of_int ((b * 4) + i)))))
      done;
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 3 in
      ignore (Stream.sync sr);
      let reads = Stream.sync_reads sr in
      check_bool
        (Printf.sprintf "stride reads %d for %d granted entries" reads n)
        true
        (reads <= (n / 4) + 2);
      Alcotest.(check (list string))
        "exact membership, log order"
        (List.init n string_of_int)
        (List.map snd (drain sr)))

let test_stream_hole_is_filled_and_skipped () =
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let s = Stream.attach w 1 in
      ignore (Stream.append s (payload "a"));
      (* Crash injection: allocate an offset on stream 1, never write it. *)
      let resp =
        Sim.Net.call ~from:(Client.host w)
          (Sequencer.increment_service (Cluster.sequencer cluster))
          { Sequencer.iepoch = 0; istreams = [ 1 ]; icount = 1 }
      in
      let hole = (alloc resp).Sequencer.base in
      ignore (Stream.append s (payload "b"));
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      Alcotest.(check (list string)) "hole skipped, order kept" [ "a"; "b" ]
        (List.map snd (drain sr));
      check_bool "hole junked" true (Client.read r hole = Client.Junk))

let test_stream_junk_breaks_stride_then_scan () =
  (* A filled hole at the most recent stream slot forces the backward
     scan path; membership must still be exact. *)
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let s = Stream.attach w 1 in
      for i = 0 to 9 do
        ignore (Stream.append s (payload (string_of_int i)))
      done;
      let resp =
        Sim.Net.call ~from:(Client.host w)
          (Sequencer.increment_service (Cluster.sequencer cluster))
          { Sequencer.iepoch = 0; istreams = [ 1 ]; icount = 1 }
      in
      let hole = (alloc resp).Sequencer.base in
      ignore (Client.fill w hole);
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      Alcotest.(check (list string)) "all ten, no junk"
        (List.init 10 string_of_int)
        (List.map snd (drain sr)))

let prop_stream_isolation =
  (* The key invariant of §5: each stream delivers exactly its own
     appends — including multiappends shared with other streams — in
     log order, regardless of interleaving. *)
  QCheck.Test.make ~name:"streams partition the log exactly" ~count:30
    QCheck.(
      pair small_int
        (list_of_size Gen.(1 -- 40) (pair (int_range 0 3) (option (int_range 0 3)))))
    (fun (seed, plan) ->
      Sim.Engine.run ~seed:(seed + 1) (fun () ->
          let cluster = Cluster.create ~servers:4 () in
          let c = Cluster.new_client cluster ~name:"app" in
          let expected = Hashtbl.create 4 in
          List.iteri
            (fun i (sid, extra) ->
              let streams =
                match extra with
                | Some e when e <> sid -> [ sid; e ]
                | Some _ | None -> [ sid ]
              in
              let off = Client.append c ~streams (payload (string_of_int i)) in
              List.iter
                (fun sid ->
                  let prev = try Hashtbl.find expected sid with Not_found -> [] in
                  Hashtbl.replace expected sid ((off, string_of_int i) :: prev))
                streams)
            plan;
          List.for_all
            (fun sid ->
              let s = Stream.attach c sid in
              ignore (Stream.sync s);
              let got = drain s in
              let want = List.rev (try Hashtbl.find expected sid with Not_found -> []) in
              got = want)
            [ 0; 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Sequencer-less (probing) appends                                   *)
(* ------------------------------------------------------------------ *)

let test_probing_append_basic () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"prober" in
      let offs = List.init 5 (fun i -> Client.append_probing c ~streams:[ 1 ] (payload (string_of_int i))) in
      Alcotest.(check (list int)) "contiguous from zero" [ 0; 1; 2; 3; 4 ] offs;
      match Client.read c 3 with
      | Client.Data e -> check_string "readable" "3" (payload_str e)
      | _ -> Alcotest.fail "expected data")

let test_probing_races_resolve () =
  (* Two probing clients race for the same offsets: write-once makes
     one winner per offset, losers move up; nothing is lost. *)
  with_cluster (fun cluster ->
      let a = Cluster.new_client cluster ~name:"prober-a" in
      let b = Cluster.new_client cluster ~name:"prober-b" in
      let done_count = ref 0 in
      let run client tag =
        Sim.Engine.spawn (fun () ->
            for i = 0 to 9 do
              ignore (Client.append_probing client ~streams:[ 1 ] (payload (Printf.sprintf "%s%d" tag i)));
              incr done_count
            done)
      in
      run a "a";
      run b "b";
      Sim.Engine.sleep 5_000_000.;
      check_int "all appends landed" 20 !done_count;
      check_int "log is dense" 20 (Client.check_slow a);
      (* every offset holds exactly one of the 20 payloads *)
      let seen = Hashtbl.create 20 in
      for off = 0 to 19 do
        match Client.read a off with
        | Client.Data e -> Hashtbl.replace seen (payload_str e) ()
        | _ -> Alcotest.fail "hole in probed log"
      done;
      check_int "no duplicates, no losses" 20 (Hashtbl.length seen))

let test_probing_bridges_sequencer_outage () =
  (* The paper's claim: the log keeps accepting appends while the
     sequencer is down, and a replacement rebuilt from the log serves
     readers that then see everything. *)
  with_cluster (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 4 do
        ignore (Client.append w ~streams:[ 1 ] (payload (Printf.sprintf "pre%d" i)))
      done;
      (* sequencer dies *)
      ignore
        (Sim.Net.call ~from:(Client.host w)
           (Sequencer.seal_service (Cluster.sequencer cluster))
           ((Client.projection w).Projection.epoch + 1)
          : Types.offset);
      (* appends continue by probing *)
      for i = 0 to 4 do
        ignore (Client.append_probing w ~streams:[ 1 ] (payload (Printf.sprintf "mid%d" i)))
      done;
      (* reconfiguration installs a replacement rebuilt from the log *)
      ignore (Cluster.replace_sequencer cluster);
      for i = 0 to 4 do
        ignore (Client.append w ~streams:[ 1 ] (payload (Printf.sprintf "post%d" i)))
      done;
      let r = Cluster.new_client cluster ~name:"reader" in
      let s = Stream.attach r 1 in
      ignore (Stream.sync s);
      let got = List.map snd (drain s) in
      Alcotest.(check (list string)) "all three phases, in order"
        (List.concat
           [
             List.init 5 (Printf.sprintf "pre%d");
             List.init 5 (Printf.sprintf "mid%d");
             List.init 5 (Printf.sprintf "post%d");
           ])
        got)

(* ------------------------------------------------------------------ *)
(* Reconfiguration                                                    *)
(* ------------------------------------------------------------------ *)

let test_reconfig_replaces_sequencer () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let s = Stream.attach c 1 in
      for i = 0 to 9 do
        ignore (Stream.append s (payload (string_of_int i)))
      done;
      let old_seq = Cluster.sequencer cluster in
      let epoch = Cluster.replace_sequencer cluster in
      check_int "epoch bumped" 1 epoch;
      check_bool "new sequencer" true (Cluster.sequencer cluster != old_seq);
      (* appends keep working through the seal via retry *)
      let off = Stream.append s (payload "after") in
      check_int "tail resumed exactly" 10 off;
      (* stream state survives: backpointers reconstructed *)
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      Alcotest.(check (list string)) "full history"
        (List.init 10 string_of_int @ [ "after" ])
        (List.map snd (drain sr)))

let test_reconfig_under_load () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let done_count = ref 0 in
      Sim.Engine.spawn (fun () ->
          for i = 0 to 49 do
            ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)));
            incr done_count
          done);
      Sim.Engine.sleep 2_000.;
      ignore (Cluster.replace_sequencer cluster);
      Sim.Engine.sleep 1_000_000.;
      check_int "all appends completed" 50 !done_count;
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      let got = List.map snd (drain sr) in
      check_int "no duplicates, no losses" 50 (List.length (List.sort_uniq compare got)))

(* A sequencer replacement with a half-exhausted range grant in flight:
   the grant's unwritten offsets are voided (the new sequencer's tail
   starts past the seal frontier, so nothing is ever double-granted)
   and the holder re-appends the remaining payloads through the new
   epoch. Every acked offset must be unique and hold exactly the acked
   payload. Exercises the g_seq/probe protocol found by the fuzzer. *)
let test_reconfig_voids_inflight_grant () =
  with_cluster (fun cluster ->
      let c = Cluster.new_client cluster ~name:"holder" in
      let g = Client.reserve c ~streams:[ 1 ] ~count:8 in
      let acked = ref [] in
      for i = 0 to 2 do
        let off = Client.write_granted c g ~index:i (payload (Printf.sprintf "pre%d" i)) in
        acked := (off, Printf.sprintf "pre%d" i) :: !acked
      done;
      ignore (Cluster.replace_sequencer cluster);
      (* the holder drains the rest of the grant under the new epoch;
         another client appends concurrently to race for offsets *)
      let other = Cluster.new_client cluster ~name:"other" in
      Sim.Engine.spawn (fun () ->
          for i = 0 to 4 do
            let off = Client.append other ~streams:[ 1 ] (payload (Printf.sprintf "oth%d" i)) in
            acked := (off, Printf.sprintf "oth%d" i) :: !acked
          done);
      for i = 3 to 7 do
        let off = Client.write_granted c g ~index:i (payload (Printf.sprintf "post%d" i)) in
        acked := (off, Printf.sprintf "post%d" i) :: !acked
      done;
      Sim.Engine.sleep 500_000.;
      let offs = List.map fst !acked in
      check_int "no double-granted offset acked twice" (List.length offs)
        (List.length (List.sort_uniq compare offs));
      let reader = Cluster.new_client cluster ~name:"reader" in
      List.iter
        (fun (off, expect) ->
          match Client.read_resolved reader off with
          | Client.Data e -> Alcotest.(check string) "acked payload survives" expect (payload_str e)
          | _ -> Alcotest.failf "acked offset %d unreadable after reconfiguration" off)
        !acked;
      (* stream playback sees every acked entry exactly once *)
      let sr = Stream.attach reader 1 in
      ignore (Stream.sync sr);
      let played = List.map snd (drain sr) in
      check_int "playback complete" (List.length !acked)
        (List.length (List.sort_uniq compare played)))

(* A client that crashes after taking a grant but before writing leaves
   holes below the tail. Readers must unblock in bounded time: the fill
   protocol junk-fills each abandoned slot after [fill_timeout_us], and
   playback skips the junk. *)
let test_crash_mid_append_unblocks_readers () =
  with_cluster (fun cluster ->
      let fault = Sim.Fault.create () in
      Sim.Net.install_fault (Cluster.net cluster) fault;
      let doomed = Cluster.new_client cluster ~name:"doomed" in
      let g = Client.reserve doomed ~streams:[ 1 ] ~count:4 in
      ignore (Client.write_granted doomed g ~index:0 (payload "written"));
      (* crash with offsets 1-3 of the grant never written *)
      Sim.Fault.crash fault "doomed";
      let w = Cluster.new_client cluster ~name:"writer" in
      let last = Client.append w ~streams:[ 1 ] (payload "after") in
      check_bool "appends continue past the corpse's range" true (last > 3);
      let p = Cluster.params cluster in
      let reader = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach reader 1 in
      let started = Sim.Engine.now () in
      ignore (Stream.sync sr);
      let got = List.map snd (drain sr) in
      let took = Sim.Engine.now () -. started in
      Alcotest.(check (list string)) "holes skipped, data intact" [ "written"; "after" ] got;
      check_bool
        (Printf.sprintf "sync unblocked in bounded time (%.0fus)" took)
        true
        (took < (4. *. p.Sim.Params.fill_timeout_us) +. 100_000.);
      (* the abandoned slots resolved as junk, not as stuck holes *)
      for off = 1 to 3 do
        match Client.read_resolved reader off with
        | Client.Junk -> ()
        | Client.Data _ -> Alcotest.failf "offset %d has data from a dead client" off
        | _ -> Alcotest.failf "offset %d still unresolved" off
      done)

(* ------------------------------------------------------------------ *)
(* Online scale-out / scale-in (segmented projections)                 *)
(* ------------------------------------------------------------------ *)

let test_scale_out_basic () =
  with_cluster ~servers:4 (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 9 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      let epoch = Cluster.scale_out cluster ~add_servers:4 in
      check_int "epoch bumped" 1 epoch;
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      check_int "two segments" 2 (Projection.num_segments proj);
      check_int "servers doubled" 8 (Projection.num_servers proj);
      check_int "tail stripes wider" 4 (Projection.num_sets proj);
      (match Cluster.scale_events cluster with
      | [ e ] ->
          check_bool "kind" true (e.Cluster.sc_kind = Cluster.Scale_out);
          check_int "sealed at the old tail" 10 e.Cluster.sc_boundary;
          check_int "before" 4 e.Cluster.sc_servers_before;
          check_int "after" 8 e.Cluster.sc_servers_after
      | l -> Alcotest.failf "expected one scale event, got %d" (List.length l));
      (* the writer rides the seal: its next append lands exactly at
         the boundary, in the new segment *)
      check_int "append resumes at the boundary" 10
        (Client.append w ~streams:[ 1 ] (payload "after"));
      (* no data moved *)
      check_int "no copy" 0 (List.length (Cluster.recoveries cluster));
      (* reads span the boundary: old offsets through the old chains,
         new ones through the new segment *)
      let r = Cluster.new_client cluster ~name:"reader" in
      for i = 0 to 9 do
        match Client.read r i with
        | Client.Data e -> check_string "old segment data" (string_of_int i) (payload_str e)
        | _ -> Alcotest.failf "offset %d lost across scale_out" i
      done;
      (match Client.read r 10 with
      | Client.Data e -> check_string "new segment data" "after" (payload_str e)
      | _ -> Alcotest.fail "new-segment offset lost");
      (* stream playback walks backpointers across the segment boundary *)
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      Alcotest.(check (list string)) "stream spans segments"
        (List.init 10 string_of_int @ [ "after" ])
        (List.map snd (drain sr)))

let test_scale_out_under_load () =
  with_cluster ~servers:4 (fun cluster ->
      let c = Cluster.new_client cluster ~name:"app" in
      let done_count = ref 0 in
      Sim.Engine.spawn (fun () ->
          for i = 0 to 49 do
            ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)));
            incr done_count
          done);
      Sim.Engine.sleep 2_000.;
      ignore (Cluster.scale_out cluster ~add_servers:4 : Types.epoch);
      Sim.Engine.sleep 1_000_000.;
      check_int "all appends completed" 50 !done_count;
      let r = Cluster.new_client cluster ~name:"reader" in
      let sr = Stream.attach r 1 in
      ignore (Stream.sync sr);
      let got = List.map snd (drain sr) in
      check_int "no duplicates, no losses" 50 (List.length (List.sort_uniq compare got)))

let test_scale_in_and_retire () =
  with_cluster ~servers:6 (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 11 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      let epoch = Cluster.scale_in cluster ~remove_servers:2 in
      check_int "epoch bumped" 1 epoch;
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      check_int "two segments" 2 (Projection.num_segments proj);
      check_int "tail stripes narrower" 2 (Projection.num_sets proj);
      (* the removed nodes still serve the bounded segment *)
      check_int "nothing released yet" 6 (Projection.num_servers proj);
      check_int "append resumes at the boundary" 12
        (Client.append w ~streams:[ 1 ] (payload "after"));
      (* nothing trimmed yet: the bounded segment cannot retire *)
      check_bool "not retirable yet" true (Cluster.retire_trimmed_segments cluster = None);
      (* reclaim the whole old segment, then retire it *)
      Client.prefix_trim w 12;
      (match Cluster.retire_trimmed_segments cluster with
      | Some e -> check_int "retire bumps the epoch" 2 e
      | None -> Alcotest.fail "fully trimmed segment must retire");
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      check_int "one segment left" 1 (Projection.num_segments proj);
      check_int "removed nodes released" 4 (Projection.num_servers proj);
      (match Cluster.scale_events cluster with
      | [ _; retire ] ->
          check_bool "retire event" true (retire.Cluster.sc_kind = Cluster.Segments_retired);
          Alcotest.(check (list string)) "released the scaled-in nodes"
            [ "storage-4"; "storage-5" ]
            (List.sort compare retire.Cluster.sc_released)
      | l -> Alcotest.failf "expected two scale events, got %d" (List.length l));
      (* retired offsets read as trimmed; live ones still resolve *)
      let r = Cluster.new_client cluster ~name:"reader" in
      check_bool "retired offset is trimmed" true (Client.read r 0 = Client.Trimmed);
      match Client.read r 12 with
      | Client.Data e -> check_string "live data" "after" (payload_str e)
      | _ -> Alcotest.fail "post-boundary offset lost")

let test_scale_out_then_storage_failure () =
  (* After a scale-out the old tail's nodes serve chains in TWO
     segments; replacing one must rebuild its slots in both. *)
  with_cluster ~servers:4 (fun cluster ->
      let f = Sim.Fault.create () in
      Sim.Net.install_fault (Cluster.net cluster) f;
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 9 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      ignore (Cluster.scale_out cluster ~add_servers:4 : Types.epoch);
      for i = 10 to 19 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      (* storage-0 heads chains in both segments *)
      let dead = (Cluster.storage_nodes cluster).(0) in
      check_string "victim" "storage-0" (Storage_node.name dead);
      Sim.Fault.crash f (Storage_node.name dead);
      let epoch = Cluster.replace_storage_node cluster ~dead in
      check_int "epoch" 2 epoch;
      let r = Cluster.new_client cluster ~name:"reader" in
      for i = 0 to 19 do
        match Client.read r i with
        | Client.Data e -> check_string "payload" (string_of_int i) (payload_str e)
        | _ -> Alcotest.failf "offset %d lost after cross-segment replacement" i
      done;
      match Cluster.recoveries cluster with
      | [ rc ] -> check_bool "copied both segments' slots" true (rc.Cluster.rec_copied_entries > 0)
      | l -> Alcotest.failf "expected one recovery, got %d" (List.length l))

let test_scale_determinism () =
  (* The reconfiguration path uses only deterministic simulation
     primitives: two runs with one seed give byte-identical traces. *)
  let run () =
    Sim.Trace.capture (fun () ->
        Sim.Engine.run ~seed:7 (fun () ->
            let cluster = Cluster.create ~servers:4 () in
            let c = Cluster.new_client cluster ~name:"app" in
            let done_count = ref 0 in
            Sim.Engine.spawn (fun () ->
                for i = 0 to 29 do
                  ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)));
                  incr done_count
                done);
            Sim.Engine.sleep 1_500.;
            ignore (Cluster.scale_out cluster ~add_servers:4 : Types.epoch);
            Sim.Engine.sleep 500_000.;
            !done_count))
  in
  let n1, trace1 = run () in
  let n2, trace2 = run () in
  check_int "all appends completed" 30 n1;
  check_int "same count" n1 n2;
  check_bool "byte-identical traces" true (String.equal trace1 trace2)

let test_projection_layout_roundtrip () =
  with_cluster ~servers:4 (fun cluster ->
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 5 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      ignore (Cluster.scale_out cluster ~add_servers:2 ~chains:[ 3; 3 ] : Types.epoch);
      let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
      let l = Projection.layout proj in
      check_bool "layout roundtrips through the wire" true
        (Projection.decode_layout (Projection.encode_layout proj) = l);
      (* truncated payloads are rejected, not misread *)
      let b = Projection.encode_layout proj in
      match Projection.decode_layout (Bytes.sub b 0 (Bytes.length b - 3)) with
      | _ -> Alcotest.fail "truncated layout must be rejected"
      | exception Invalid_argument _ -> ())

let prop_segment_mapping_roundtrip =
  (* resolve and global_offset are inverse over arbitrary multi-segment
     maps with mixed stripe widths and a retired prefix. *)
  QCheck.Test.make ~name:"segment mapping is a bijection" ~count:100
    QCheck.(
      pair (int_range 0 5)
        (list_of_size Gen.(1 -- 4) (pair (int_range 1 4) (int_range 1 24))))
    (fun (first_base, segs) ->
      Sim.Engine.run ~seed:5 (fun () ->
          let params = Sim.Params.default in
          let net = Sim.Net.create ~latency:10. ~bandwidth:125. ~jitter:0. () in
          let fresh =
            let n = ref 0 in
            fun () ->
              incr n;
              Storage_node.create ~net ~name:(Printf.sprintf "n%d" !n) ~params ()
          in
          let seq = Sequencer.create ~net ~name:"s" ~params () in
          let nsegs = List.length segs in
          let base = ref first_base and local_base = ref 0 in
          let segments =
            Array.of_list
              (List.mapi
                 (fun i (nsets, span) ->
                   let seg =
                     {
                       Projection.seg_base = !base;
                       seg_limit = (if i = nsegs - 1 then None else Some (!base + span));
                       seg_local_base = !local_base;
                       seg_sets = Array.init nsets (fun _ -> [| fresh () |]);
                     }
                   in
                   base := !base + span;
                   local_base := !local_base + Projection.seg_local_span seg ~span;
                   seg)
                 segs)
          in
          let proj = Projection.v ~epoch:0 ~segments ~sequencer:seq in
          let top = !base + 10 in
          let ok = ref true in
          for off = 0 to top do
            match Projection.resolve proj off with
            | None -> if off >= first_base then ok := false
            | Some (seg, set, local) ->
                if off < first_base then ok := false;
                if Projection.global_offset proj ~seg ~set ~local <> off then ok := false;
                (* the public accessors agree with resolve *)
                if Projection.local_offset proj off <> local then ok := false;
                if
                  Projection.replica_set proj off
                  != (Projection.segment proj seg).Projection.seg_sets.(set)
                then ok := false
          done;
          !ok))

(* ------------------------------------------------------------------ *)
(* Sequencer checkpoints (§5 optimization)                             *)
(* ------------------------------------------------------------------ *)

let test_seq_checkpoint_codec () =
  let snap =
    {
      Seq_checkpoint.snap_tail = 12345;
      snap_streams = [ (1, [ 100; 90; 80; 70 ]); (42, [ 12000 ]); (7, []) ];
    }
  in
  let back = Seq_checkpoint.decode (Seq_checkpoint.encode snap) in
  check_int "tail" snap.Seq_checkpoint.snap_tail back.Seq_checkpoint.snap_tail;
  check_bool "streams" true
    (List.sort compare back.Seq_checkpoint.snap_streams
    = List.sort compare snap.Seq_checkpoint.snap_streams)

let test_seq_checkpoint_bounds_rebuild () =
  (* Without the scribe a rebuild scans the whole log; with it, only
     the suffix above the last snapshot. *)
  let scan_length ~scribe =
    Sim.Engine.run ~seed:91 (fun () ->
        let cluster = Cluster.create ~servers:4 () in
        if scribe then Cluster.start_checkpoint_scribe cluster ~interval_us:20_000.;
        let c = Cluster.new_client cluster ~name:"writer" in
        for i = 0 to 199 do
          ignore (Client.append c ~streams:[ 1 + (i mod 3) ] (payload (string_of_int i)));
          Sim.Engine.sleep 500.
        done;
        ignore (Cluster.replace_sequencer cluster);
        (* Correctness first: streams must replay exactly. *)
        let r = Cluster.new_client cluster ~name:"reader" in
        let s1 = Stream.attach r 1 in
        ignore (Stream.sync s1);
        let first_stream = List.length (drain s1) in
        check_bool "stream intact after rebuild" true (first_stream >= 66);
        Cluster.last_rebuild_scan cluster)
  in
  let full = scan_length ~scribe:false in
  let bounded = scan_length ~scribe:true in
  check_bool
    (Printf.sprintf "bounded scan (%d) well below full scan (%d)" bounded full)
    true
    (bounded * 3 < full);
  check_bool "full scan covers the log" true (full >= 200)

let test_seq_checkpoint_appends_resume () =
  with_cluster (fun cluster ->
      Cluster.start_checkpoint_scribe cluster ~interval_us:5_000.;
      let c = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 19 do
        ignore (Client.append c ~streams:[ 1 ] (payload (string_of_int i)));
        Sim.Engine.sleep 1_000.
      done;
      ignore (Cluster.replace_sequencer cluster);
      (* the reconstructed sequencer must not reuse offsets *)
      let off = Client.append c ~streams:[ 1 ] (payload "after") in
      check_bool "tail strictly advances" true (off >= 20);
      let r = Cluster.new_client cluster ~name:"reader" in
      let s = Stream.attach r 1 in
      ignore (Stream.sync s);
      Alcotest.(check (list string)) "stream history exact"
        (List.init 20 string_of_int @ [ "after" ])
        (List.map snd (drain s)))

(* ------------------------------------------------------------------ *)
(* Storage-node failure recovery (§2.2)                                *)
(* ------------------------------------------------------------------ *)

(* Attach a fault controller to the cluster's fabric. *)
let with_faulty_cluster ?seed ?servers body =
  with_cluster ?seed ?servers (fun cluster ->
      let f = Sim.Fault.create () in
      Sim.Net.install_fault (Cluster.net cluster) f;
      body cluster f)

let test_recover_replace_storage_node () =
  with_faulty_cluster (fun cluster f ->
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 19 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      (* kill the head of replica set 0 (even global offsets) *)
      let dead = (Cluster.storage_nodes cluster).(0) in
      Sim.Fault.crash f (Storage_node.name dead);
      let epoch = Cluster.replace_storage_node cluster ~dead in
      check_int "epoch bumped" 1 epoch;
      check_bool "spare substituted" true
        (Array.exists
           (fun n -> Storage_node.name n = "storage-spare-0")
           (Cluster.storage_nodes cluster));
      (* every acknowledged append survives the replacement *)
      let r = Cluster.new_client cluster ~name:"reader" in
      for i = 0 to 19 do
        match Client.read r i with
        | Client.Data e -> check_string "payload" (string_of_int i) (payload_str e)
        | _ -> Alcotest.failf "offset %d lost" i
      done;
      (* the sequencer was retained: the tail resumes exactly *)
      check_int "tail resumes" 20 (Client.append w ~streams:[ 1 ] (payload "after"));
      match Cluster.recoveries cluster with
      | [ r ] ->
          check_string "dead node" "storage-0" r.Cluster.rec_dead;
          (* set 0 held the even offsets 0..18: ten local cells *)
          check_int "copied the survivor's prefix" 10 r.Cluster.rec_copied_entries;
          check_bool "window positive" true (r.Cluster.rec_installed_us > r.Cluster.rec_started_us)
      | l -> Alcotest.failf "expected one recovery, got %d" (List.length l))

let test_recover_monitor_detects () =
  with_faulty_cluster (fun cluster f ->
      Cluster.start_failure_monitor cluster;
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 9 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      Sim.Engine.sleep 100_000.;
      check_int "no false positives" 0 (List.length (Cluster.recoveries cluster));
      (* this time kill a chain tail: the copy source is the head *)
      Sim.Fault.crash f "storage-1";
      Sim.Engine.sleep 300_000.;
      (match Cluster.recoveries cluster with
      | [ r ] -> check_string "detected the dead tail" "storage-1" r.Cluster.rec_dead
      | l -> Alcotest.failf "expected one recovery, got %d" (List.length l));
      check_int "append resumes" 10 (Client.append w ~streams:[ 1 ] (payload "x"));
      let r = Cluster.new_client cluster ~name:"reader" in
      for i = 0 to 10 do
        match Client.read r i with
        | Client.Data _ -> ()
        | _ -> Alcotest.failf "offset %d lost" i
      done)

(* An SSD failure is not a crash — the host answers, its device
   doesn't. The failed resource raises into read/write RPCs, the
   monitor sees the errors as a dead member, and the same replacement
   path runs. *)
let test_recover_ssd_failure () =
  with_faulty_cluster (fun cluster f ->
      Cluster.start_failure_monitor cluster;
      let w = Cluster.new_client cluster ~name:"writer" in
      for i = 0 to 9 do
        ignore (Client.append w ~streams:[ 1 ] (payload (string_of_int i)))
      done;
      let victim = (Cluster.storage_nodes cluster).(0) in
      Sim.Fault.schedule f ~at:20_000.
        (Sim.Fault.Custom
           ("fail storage-0.ssd", fun () -> Sim.Resource.fail (Storage_node.ssd victim)));
      Sim.Engine.sleep 400_000.;
      (match Cluster.recoveries cluster with
      | [ r ] -> check_string "replaced the node with the dead device" "storage-0" r.Cluster.rec_dead
      | l -> Alcotest.failf "expected one recovery, got %d" (List.length l));
      check_int "append resumes" 10 (Client.append w ~streams:[ 1 ] (payload "x"));
      let r = Cluster.new_client cluster ~name:"reader" in
      for i = 0 to 10 do
        match Client.read r i with
        | Client.Data _ -> ()
        | _ -> Alcotest.failf "offset %d lost" i
      done)

(* The hole-fill race, forced with injected message delay: the writer's
   link to the chain tail stalls past the fill timeout, so the filler
   finds the torn append's data at the head and completes it. *)
let test_fill_completes_torn_append_under_delay () =
  with_faulty_cluster ~servers:2 (fun cluster f ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let r = Cluster.new_client cluster ~name:"reader" in
      Sim.Fault.degrade f ~src:"writer" ~dst:"storage-1" ~delay_us:400_000. ();
      let landed = ref (-1) in
      Sim.Engine.spawn (fun () -> landed := Client.append w ~streams:[ 1 ] (payload "x"));
      Sim.Engine.sleep 150_000.;
      (match Client.fill r 0 with
      | Client.Fill_completed e -> check_string "completed the torn append" "x" (payload_str e)
      | Client.Filled -> Alcotest.fail "filler junked data visible at the head"
      | Client.Fill_lost _ -> Alcotest.fail "the tail cannot have the data yet");
      Sim.Fault.clear_edge f ~src:"writer" ~dst:"storage-1";
      Sim.Engine.sleep 500_000.;
      check_int "writer kept its offset" 0 !landed;
      check_int "no duplicate allocation" 1 (Client.check r);
      match Client.read r 0 with
      | Client.Data e -> check_string "data" "x" (payload_str e)
      | _ -> Alcotest.fail "offset 0 must hold the data")

(* The same race when the append wins: a short delay slows the chain
   write but both replicas land before the filler arrives, so the fill
   changes nothing and reports the loss. *)
let test_fill_loses_to_slow_append () =
  with_faulty_cluster ~servers:2 (fun cluster f ->
      let w = Cluster.new_client cluster ~name:"writer" in
      let r = Cluster.new_client cluster ~name:"reader" in
      Sim.Fault.degrade f ~src:"writer" ~dst:"*" ~delay_us:5_000. ();
      let landed = ref (-1) in
      Sim.Engine.spawn (fun () -> landed := Client.append w ~streams:[ 1 ] (payload "x"));
      Sim.Engine.sleep 30_000.;
      (match Client.fill r 0 with
      | Client.Fill_lost e -> check_string "filler lost cleanly" "x" (payload_str e)
      | Client.Fill_completed _ -> Alcotest.fail "nothing was left to repair"
      | Client.Filled -> Alcotest.fail "data must not be junked");
      check_int "writer unaffected" 0 !landed;
      check_int "single allocation" 1 (Client.check r))

(* ------------------------------------------------------------------ *)
(* Wire: arena writers and borrowed cursors                           *)
(* ------------------------------------------------------------------ *)

(* One value of each wire shape, as a tagged sum so QCheck can
   generate heterogeneous sequences. *)
type wire_item =
  | Wu8 of int
  | Wbool of bool
  | Wu32 of int
  | Wu64 of int
  | Wstr of string
  | Wbytes of string
  | Wopt of string option

let wire_item_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Wu8 v) (int_range 0 255);
        map (fun b -> Wbool b) bool;
        map (fun v -> Wu32 v) (int_range 0 0xFFFF_FFFF);
        map (fun v -> Wu64 v) int;  (* the full native range round-trips *)
        map (fun s -> Wstr s) string_small;
        map (fun s -> Wbytes s) string_small;
        map (fun o -> Wopt o) (option string_small);
      ])

let wire_item_print = function
  | Wu8 v -> Printf.sprintf "u8 %d" v
  | Wbool b -> Printf.sprintf "bool %b" b
  | Wu32 v -> Printf.sprintf "u32 %d" v
  | Wu64 v -> Printf.sprintf "u64 %d" v
  | Wstr s -> Printf.sprintf "str %S" s
  | Wbytes s -> Printf.sprintf "bytes %S" s
  | Wopt o ->
      Printf.sprintf "opt %s" (match o with None -> "None" | Some s -> Printf.sprintf "(Some %S)" s)

let wire_put w = function
  | Wu8 v -> Wire.put_u8 w v
  | Wbool b -> Wire.put_bool w b
  | Wu32 v -> Wire.put_u32 w v
  | Wu64 v -> Wire.put_u64 w v
  | Wstr s -> Wire.put_string w s
  | Wbytes s -> Wire.put_bytes w (Bytes.of_string s)
  | Wopt o -> Wire.put_opt_string w o

let wire_get c = function
  | Wu8 _ -> Wu8 (Wire.get_u8 c)
  | Wbool _ -> Wbool (Wire.get_bool c)
  | Wu32 _ -> Wu32 (Wire.get_u32 c)
  | Wu64 _ -> Wu64 (Wire.get_u64 c)
  | Wstr _ -> Wstr (Wire.get_string c)
  | Wbytes _ -> Wbytes (Bytes.to_string (Wire.get_bytes c))
  | Wopt _ -> Wopt (Wire.get_opt_string c)

let wire_items_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map wire_item_print l))
    QCheck.Gen.(list_size (int_range 0 40) wire_item_gen)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire values round-trip through the shared arena" ~count:500
    wire_items_arb (fun items ->
      let b = Wire.to_bytes (fun w -> List.iter (wire_put w) items) in
      let c = Wire.reader b in
      let got = List.map (wire_get c) items in
      got = items && Wire.remaining c = 0)

let prop_wire_roundtrip_reused_writer =
  (* Same round-trip through one explicitly reused writer and one
     reused cursor — arena reuse must not leak state between encodes. *)
  let w = Wire.writer ~size:8 () in
  let c = Wire.reader Bytes.empty in
  QCheck.Test.make ~name:"wire round-trip with reused writer and cursor" ~count:500
    wire_items_arb (fun items ->
      Wire.reset w;
      List.iter (wire_put w) items;
      Wire.reset_reader c (Wire.contents w);
      let got = List.map (wire_get c) items in
      got = items && Wire.remaining c = 0)

let test_wire_aliasing () =
  (* [to_bytes] borrows the shared arena and copies at the ownership
     boundary: bytes returned by one encode must survive the arena
     being overwritten by the next. *)
  let enc tag n =
    Wire.to_bytes (fun w ->
        Wire.put_u32 w n;
        Wire.put_string w tag;
        Wire.put_u64 w (n * 1_000_003))
  in
  let a = enc "first-record-payload" 17 in
  let a_copy = Bytes.copy a in
  let _b = enc "second-record-overwriting-the-arena" 99 in
  check_bool "first encode unchanged by second" true (Bytes.equal a a_copy);
  let c = Wire.reader a in
  check_int "u32 survives" 17 (Wire.get_u32 c);
  check_string "string survives" "first-record-payload" (Wire.get_string c);
  check_int "u64 survives" (17 * 1_000_003) (Wire.get_u64 c)

let test_wire_patch () =
  let b =
    Wire.to_bytes (fun w ->
        let at = Wire.pos w in
        Wire.put_u32 w 0;
        Wire.put_string w "body";
        Wire.patch_u32 w ~at (Wire.pos w - at - 4))
  in
  let c = Wire.reader b in
  check_int "patched length" 8 (Wire.get_u32 c);
  check_string "body" "body" (Wire.get_string c);
  let w = Wire.writer () in
  Wire.put_u32 w 1;
  (match Wire.patch_u32 w ~at:1 0 with
  | () -> Alcotest.fail "patch past written region must be rejected"
  | exception Invalid_argument _ -> ());
  match Wire.patch_u32 w ~at:(-1) 0 with
  | () -> Alcotest.fail "negative patch offset must be rejected"
  | exception Invalid_argument _ -> ()

let test_wire_truncated () =
  let b = Wire.to_bytes (fun w -> Wire.put_u32 w 1000) in
  let c = Wire.reader b in
  (match Wire.get_string c with
  | _ -> Alcotest.fail "length past the buffer must be rejected"
  | exception Invalid_argument _ -> ());
  let c2 = Wire.reader (Bytes.create 3) in
  match Wire.get_u32 c2 with
  | _ -> Alcotest.fail "truncated u32 must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Sequencer.Core: fixed rings behind the counter                     *)
(* ------------------------------------------------------------------ *)

let test_seqcore_ring_semantics () =
  let t = Sequencer.Core.create ~k:4 () in
  check_int "fresh tail" 0 (Sequencer.Core.tail t);
  Alcotest.(check (list int)) "unknown stream" [] (Sequencer.Core.last_k t 7);
  (* Issue 0..5 on stream 7: the ring keeps the newest 4, newest first. *)
  let a = Sequencer.Core.grant t ~streams:[ 7 ] ~count:6 in
  check_int "grant base" 0 a.Sequencer.base;
  Alcotest.(check (list int)) "grant excludes itself" [] (List.assoc 7 a.Sequencer.stream_tails);
  check_int "tail advanced" 6 (Sequencer.Core.tail t);
  Alcotest.(check (list int))
    "newest-first, truncated to k" [ 5; 4; 3; 2 ]
    (Sequencer.Core.last_k t 7);
  (* A later grant sees the pre-grant ring as its tails. *)
  let b = Sequencer.Core.grant t ~streams:[ 7; 9 ] ~count:1 in
  check_int "second base" 6 b.Sequencer.base;
  Alcotest.(check (list int))
    "tails snapshot pre-grant" [ 5; 4; 3; 2 ]
    (List.assoc 7 b.Sequencer.stream_tails);
  Alcotest.(check (list int)) "new stream empty tails" [] (List.assoc 9 b.Sequencer.stream_tails);
  Alcotest.(check (list int)) "ring after" [ 6; 5; 4; 3 ] (Sequencer.Core.last_k t 7);
  Alcotest.(check (list int)) "stream 9 ring" [ 6 ] (Sequencer.Core.last_k t 9)

let test_seqcore_peek_and_seed () =
  (* Seeding truncates newest-first lists to k; peek never advances. *)
  let t =
    Sequencer.Core.create ~k:2 ~initial_tail:50
      ~initial_streams:[ (3, [ 49; 47; 40; 12 ]); (4, [ 48 ]) ]
      ()
  in
  Alcotest.(check (list int)) "seeded truncated to k" [ 49; 47 ] (Sequencer.Core.last_k t 3);
  Alcotest.(check (list int)) "short seed kept" [ 48 ] (Sequencer.Core.last_k t 4);
  let p = Sequencer.Core.peek t ~streams:[ 3; 4; 5 ] in
  check_int "peek base is tail" 50 p.Sequencer.base;
  Alcotest.(check (list int)) "peek tails" [ 49; 47 ] (List.assoc 3 p.Sequencer.stream_tails);
  check_int "peek does not advance" 50 (Sequencer.Core.tail t);
  check_int "nstreams" 2 (Sequencer.Core.nstreams t);
  (* note_issue is the grant inner loop: O(1) ring rotation. *)
  Sequencer.Core.note_issue t 4 50;
  Sequencer.Core.note_issue t 4 51;
  Sequencer.Core.note_issue t 4 52;
  Alcotest.(check (list int)) "rotated ring" [ 52; 51 ] (Sequencer.Core.last_k t 4)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "corfu"
    [
      ( "stream-header",
        [
          Alcotest.test_case "relative roundtrip" `Quick test_header_relative_roundtrip;
          Alcotest.test_case "absolute on overflow" `Quick test_header_absolute_when_overflow;
          Alcotest.test_case "relative boundary" `Quick test_header_relative_boundary;
          Alcotest.test_case "empty backpointers" `Quick test_header_empty_backptrs;
          Alcotest.test_case "multi-stream block" `Quick test_header_multi_stream_block;
          Alcotest.test_case "rejects bad ids" `Quick test_header_rejects_bad_ids;
          Alcotest.test_case "rejects bad k" `Quick test_header_rejects_bad_k;
        ] );
      ( "storage-node",
        [
          Alcotest.test_case "write once" `Quick test_node_write_once;
          Alcotest.test_case "unwritten read" `Quick test_node_unwritten_read;
          Alcotest.test_case "fill semantics" `Quick test_node_fill_semantics;
          Alcotest.test_case "seal rejects stale epochs" `Quick test_node_seal_rejects_stale_epochs;
          Alcotest.test_case "trim" `Quick test_node_trim;
          Alcotest.test_case "prefix trim" `Quick test_node_prefix_trim;
          Alcotest.test_case "local tail" `Quick test_node_local_tail;
          Alcotest.test_case "capacity" `Quick test_node_capacity;
        ] );
      ( "wire",
        [
          Alcotest.test_case "arena aliasing at ownership boundary" `Quick test_wire_aliasing;
          Alcotest.test_case "length backpatch" `Quick test_wire_patch;
          Alcotest.test_case "truncated input rejected" `Quick test_wire_truncated;
        ] );
      ( "sequencer-core",
        [
          Alcotest.test_case "ring semantics" `Quick test_seqcore_ring_semantics;
          Alcotest.test_case "peek and seeded state" `Quick test_seqcore_peek_and_seed;
        ] );
      ( "sequencer",
        [
          Alcotest.test_case "monotonic offsets" `Quick test_sequencer_monotonic;
          Alcotest.test_case "stream backpointers" `Quick test_sequencer_stream_backpointers;
          Alcotest.test_case "peek does not advance" `Quick test_sequencer_peek_does_not_advance;
          Alcotest.test_case "batched allocation" `Quick test_sequencer_batched_allocation;
          Alcotest.test_case "range grant records streams" `Quick
            test_sequencer_range_grant_records_streams;
          Alcotest.test_case "seal" `Quick test_sequencer_seal;
          Alcotest.test_case "seeded state" `Quick test_sequencer_seeded_state;
          Alcotest.test_case "throughput cap" `Slow test_sequencer_throughput_cap;
        ] );
      ( "projection",
        [
          Alcotest.test_case "offset mapping" `Quick test_projection_mapping;
          Alcotest.test_case "global tail from locals" `Quick test_projection_global_tail;
          Alcotest.test_case "shape validation" `Quick test_projection_validation;
        ] );
      ( "client",
        [
          Alcotest.test_case "append and read" `Quick test_client_append_read;
          Alcotest.test_case "two clients interleave" `Quick test_client_two_clients_interleave;
          Alcotest.test_case "slow check matches fast" `Quick test_client_check_slow_matches_fast;
          Alcotest.test_case "fill hole with junk" `Quick test_client_fill_hole;
          Alcotest.test_case "fill completes torn append" `Quick
            test_client_fill_completes_torn_append;
          Alcotest.test_case "read_resolved waits" `Quick
            test_client_read_resolved_waits_for_slow_writer;
          Alcotest.test_case "trim and prefix trim" `Quick test_client_trim_and_prefix_trim;
        ] );
      ( "stream",
        [
          Alcotest.test_case "basic playback" `Quick test_stream_basic_playback;
          Alcotest.test_case "selective consumption" `Quick test_stream_selective_consumption;
          Alcotest.test_case "multiappend on all streams" `Quick
            test_stream_multiappend_visible_on_all;
          Alcotest.test_case "incremental sync" `Quick test_stream_incremental_sync;
          Alcotest.test_case "reader on another client" `Quick test_stream_reader_on_other_client;
          Alcotest.test_case "sync strides K" `Quick test_stream_sync_reads_stride_k;
          Alcotest.test_case "append_range visible in order" `Quick
            test_append_range_visible_in_order;
          Alcotest.test_case "append_range chains stay strided" `Quick
            test_append_range_chains_stay_strided;
          Alcotest.test_case "hole filled and skipped" `Quick test_stream_hole_is_filled_and_skipped;
          Alcotest.test_case "junk breaks stride, scan recovers" `Quick
            test_stream_junk_breaks_stride_then_scan;
        ] );
      ( "probing",
        [
          Alcotest.test_case "basic probing append" `Quick test_probing_append_basic;
          Alcotest.test_case "probing races resolve" `Quick test_probing_races_resolve;
          Alcotest.test_case "bridges sequencer outage" `Quick
            test_probing_bridges_sequencer_outage;
        ] );
      ( "seq-checkpoint",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_seq_checkpoint_codec;
          Alcotest.test_case "bounds the rebuild scan" `Quick test_seq_checkpoint_bounds_rebuild;
          Alcotest.test_case "appends resume exactly" `Quick test_seq_checkpoint_appends_resume;
        ] );
      ( "reconfiguration",
        [
          Alcotest.test_case "replace sequencer" `Quick test_reconfig_replaces_sequencer;
          Alcotest.test_case "reconfig under load" `Quick test_reconfig_under_load;
          Alcotest.test_case "reconfig voids in-flight grant" `Quick
            test_reconfig_voids_inflight_grant;
          Alcotest.test_case "crash mid-append unblocks readers" `Quick
            test_crash_mid_append_unblocks_readers;
        ] );
      ( "scale",
        [
          Alcotest.test_case "scale-out basic" `Quick test_scale_out_basic;
          Alcotest.test_case "scale-out under load" `Quick test_scale_out_under_load;
          Alcotest.test_case "scale-in and retire" `Quick test_scale_in_and_retire;
          Alcotest.test_case "storage failure across segments" `Quick
            test_scale_out_then_storage_failure;
          Alcotest.test_case "scale-out determinism" `Quick test_scale_determinism;
          Alcotest.test_case "layout wire roundtrip" `Quick test_projection_layout_roundtrip;
        ] );
      ( "fault-recovery",
        [
          Alcotest.test_case "replace storage node" `Quick test_recover_replace_storage_node;
          Alcotest.test_case "monitor detects and replaces" `Quick test_recover_monitor_detects;
          Alcotest.test_case "ssd failure triggers replacement" `Quick test_recover_ssd_failure;
          Alcotest.test_case "fill completes torn append under delay" `Quick
            test_fill_completes_torn_append_under_delay;
          Alcotest.test_case "fill loses to slow append" `Quick test_fill_loses_to_slow_append;
        ] );
      ( "properties",
        qcheck
          [
            prop_header_roundtrip;
            prop_stream_isolation;
            prop_segment_mapping_roundtrip;
            prop_wire_roundtrip;
            prop_wire_roundtrip_reused_writer;
          ] );
    ]
