(* Tests for the Tango runtime: records, batching, replication,
   transactions, checkpoints, GC, and the directory. *)

open Tango

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_status =
  Alcotest.testable
    (fun ppf -> function
      | Runtime.Committed -> Fmt.string ppf "committed"
      | Runtime.Aborted -> Fmt.string ppf "aborted")
    ( = )

let with_cluster ?(seed = 5) ?(servers = 4) body =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      body cluster)

let runtime ?batch_size ?decision_timeout_us cluster name =
  Runtime.create ?batch_size ?decision_timeout_us (Corfu.Cluster.new_client cluster ~name)

(* ------------------------------------------------------------------ *)
(* A minimal integer register object, as in the paper's Figure 3.     *)
(* ------------------------------------------------------------------ *)

module Reg = struct
  type t = { rt : Runtime.t; roid : int; mutable v : int; mutable last_pos : int }

  let encode x =
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int x);
    b

  let decode b = Int64.to_int (Bytes.get_int64_be b 0)

  let attach rt ~oid =
    let t = { rt; roid = oid; v = 0; last_pos = -1 } in
    Runtime.register rt ~oid
      {
        Runtime.apply =
          (fun ~pos ~key:_ data ->
            t.v <- decode data;
            t.last_pos <- pos);
        checkpoint = Some (fun () -> encode t.v);
        load_checkpoint = Some (fun data -> t.v <- decode data);
      };
    t

  let write t x = Runtime.update_helper t.rt ~oid:t.roid (encode x)

  let read t =
    Runtime.query_helper t.rt ~oid:t.roid ();
    t.v

  let read_at t upto =
    Runtime.query_helper t.rt ~oid:t.roid ~upto ();
    t.v
end

(* A string map with per-key fine-grained versioning. *)
module Map_obj = struct
  type t = { rt : Runtime.t; moid : int; tbl : (string, string) Hashtbl.t }

  let encode k v = Bytes.of_string (Printf.sprintf "%d:%s%s" (String.length k) k v)

  let decode b =
    let s = Bytes.to_string b in
    let colon = String.index s ':' in
    let klen = int_of_string (String.sub s 0 colon) in
    let k = String.sub s (colon + 1) klen in
    let v = String.sub s (colon + 1 + klen) (String.length s - colon - 1 - klen) in
    (k, v)

  let attach rt ~oid =
    let t = { rt; moid = oid; tbl = Hashtbl.create 16 } in
    Runtime.register rt ~oid
      {
        Runtime.apply =
          (fun ~pos:_ ~key:_ data ->
            let k, v = decode data in
            if v = "" then Hashtbl.remove t.tbl k else Hashtbl.replace t.tbl k v);
        checkpoint = None;
        load_checkpoint = None;
      };
    t

  let put t k v = Runtime.update_helper t.rt ~oid:t.moid ~key:k (encode k v)

  let get t k =
    Runtime.query_helper t.rt ~oid:t.moid ~key:k ();
    Hashtbl.find_opt t.tbl k

  let size t =
    Runtime.query_helper t.rt ~oid:t.moid ();
    Hashtbl.length t.tbl
end

(* ------------------------------------------------------------------ *)
(* Record codec                                                       *)
(* ------------------------------------------------------------------ *)

let sample_records =
  [
    Record.Update { Record.u_oid = 3; u_key = None; u_data = Bytes.of_string "abc" };
    Record.Update { Record.u_oid = 4; u_key = Some "k1"; u_data = Bytes.empty };
    Record.Commit
      {
        Record.c_reads = [ (1, None, 42); (2, Some "x", -1) ];
        c_writes =
          [
            { Record.u_oid = 1; u_key = Some "y"; u_data = Bytes.of_string "v" };
            { Record.u_oid = 7; u_key = None; u_data = Bytes.of_string "w" };
          ];
        c_needs_decision = true;
      };
    Record.Decision { d_target = 99; d_committed = false };
    Record.Partial { p_target = 77; p_verdicts = [ (1, true); (2, false) ] };
    Record.Checkpoint { k_oid = 5; k_base = 12; k_data = Bytes.of_string "snapshot" };
  ]

let test_record_roundtrip () =
  let b = Record.encode_payload sample_records in
  let back = Record.decode_payload b in
  check_int "count" (List.length sample_records) (List.length back);
  check_bool "equal" true (sample_records = back)

let test_record_pos_math () =
  let p = Record.pos ~offset:17 ~slot:3 in
  check_int "offset" 17 (Record.pos_offset p);
  check_int "slot" 3 (Record.pos_slot p);
  check_bool "ordering" true
    (Record.pos ~offset:1 ~slot:63 < Record.pos ~offset:2 ~slot:0)

let test_record_streams_of () =
  match sample_records with
  | [ u1; _; commit; decision; partial; ckpt ] ->
      Alcotest.(check (list int)) "update" [ 3 ] (Record.streams_of u1);
      Alcotest.(check (list int)) "commit = write set" [ 1; 7 ] (Record.streams_of commit);
      Alcotest.(check (list int)) "decision" [] (Record.streams_of decision);
      Alcotest.(check (list int)) "partial" [] (Record.streams_of partial);
      Alcotest.(check (list int)) "checkpoint" [ 5 ] (Record.streams_of ckpt)
  | _ -> assert false

let test_record_rejects_bad () =
  (match Record.encode_payload [] with
  | _ -> Alcotest.fail "empty payload must be rejected"
  | exception Invalid_argument _ -> ());
  let b = Record.encode_payload sample_records in
  let truncated = Bytes.sub b 0 (Bytes.length b - 3) in
  match Record.decode_payload truncated with
  | _ -> Alcotest.fail "truncated payload must be rejected"
  | exception Invalid_argument _ -> ()

let prop_record_roundtrip =
  let gen_update =
    QCheck.Gen.(
      map3
        (fun oid key data ->
          { Record.u_oid = oid; u_key = key; u_data = Bytes.of_string data })
        (int_range 0 1000)
        (opt (string_size (1 -- 8)))
        (string_size (0 -- 64)))
  in
  let gen_record =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun u -> Record.Update u) gen_update);
          ( 3,
            map3
              (fun reads writes nd ->
                Record.Commit { Record.c_reads = reads; c_writes = writes; c_needs_decision = nd })
              (small_list (triple (int_range 0 100) (opt (string_size (1 -- 5))) (int_range (-1) 1000)))
              (small_list gen_update) bool );
          ( 1,
            map2
              (fun t c -> Record.Decision { d_target = t; d_committed = c })
              (int_range 0 100_000) bool );
          ( 1,
            map2
              (fun o d -> Record.Checkpoint { k_oid = o; k_base = 7; k_data = Bytes.of_string d })
              (int_range 0 100) (string_size (0 -- 32)) );
          ( 1,
            map2
              (fun t vs -> Record.Partial { p_target = t; p_verdicts = vs })
              (int_range 0 100_000)
              (small_list (pair (int_range 0 100) bool)) );
        ])
  in
  QCheck.Test.make ~name:"record payload roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 20) gen_record))
    (fun records -> Record.decode_payload (Record.encode_payload records) = records)

(* ------------------------------------------------------------------ *)
(* Batcher                                                            *)
(* ------------------------------------------------------------------ *)

let test_batcher_fills_batches () =
  with_cluster (fun cluster ->
      let cl = Corfu.Cluster.new_client cluster ~name:"app" in
      let b = Batcher.create ~client:cl ~batch_size:4 () in
      let positions = ref [] in
      for i = 0 to 7 do
        Sim.Engine.spawn (fun () ->
            let p =
              Batcher.submit b ~streams:[ 1 ]
                (Record.Update { Record.u_oid = 1; u_key = None; u_data = Reg.encode i })
            in
            positions := p :: !positions)
      done;
      Sim.Engine.sleep 10_000.;
      check_int "all submitted" 8 (List.length !positions);
      check_int "two entries" 2 (Batcher.entries_appended b);
      check_int "records" 8 (Batcher.records_submitted b);
      (* positions distinct *)
      check_int "distinct positions" 8 (List.length (List.sort_uniq compare !positions)))

let test_batcher_linger_flushes_partial () =
  with_cluster (fun cluster ->
      let cl = Corfu.Cluster.new_client cluster ~name:"app" in
      let b = Batcher.create ~client:cl ~batch_size:4 ~linger_us:50. () in
      let p =
        Batcher.submit b ~streams:[ 1 ]
          (Record.Update { Record.u_oid = 1; u_key = None; u_data = Reg.encode 1 })
      in
      check_int "slot 0 of entry 0" (Record.pos ~offset:0 ~slot:0) p;
      check_int "one entry" 1 (Batcher.entries_appended b);
      check_bool "waited for linger" true (Sim.Engine.now () >= 50.))

let test_batcher_deep_window_ordering () =
  (* With a deep append window, many entries fly concurrently — yet
     the positions handed back must stay consistent with log order
     (monotone in submit order) because the drainer serializes offset
     allocation. *)
  with_cluster (fun cluster ->
      let cl = Corfu.Cluster.new_client cluster ~name:"app" in
      let b = Batcher.create ~client:cl ~batch_size:1 ~append_window:8 () in
      let n = 32 in
      let positions = Array.make n (-1) in
      for i = 0 to n - 1 do
        Sim.Engine.spawn (fun () ->
            positions.(i) <-
              Batcher.submit b ~streams:[ 1 ]
                (Record.Update { Record.u_oid = 1; u_key = None; u_data = Reg.encode i }))
      done;
      Sim.Engine.sleep 100_000.;
      Array.iteri
        (fun i p -> check_bool (Printf.sprintf "submit %d landed" i) true (p >= 0))
        positions;
      for i = 1 to n - 1 do
        check_bool
          (Printf.sprintf "position of submit %d above submit %d" i (i - 1))
          true
          (positions.(i) > positions.(i - 1))
      done;
      check_bool "chain writes overlapped" true (Batcher.inflight_peak b > 1);
      check_int "window respected as peak" 8 (Batcher.inflight_peak b);
      check_int "pipeline drained" 0 (Batcher.inflight b);
      check_int "one entry per record" n (Batcher.entries_appended b);
      check_int "every entry through a grant" n (Batcher.granted_entries b);
      check_bool
        (Printf.sprintf "grants (%d) amortize sequencer RPCs" (Batcher.grants b))
        true
        (Batcher.grants b <= n / 2))

let test_pipelined_writes_linearizable () =
  (* The paper's §3.1 claim must survive the pipelined append path:
     concurrent writers on one view, a reader on another, and the
     observed history checked against a sequential register. *)
  with_cluster (fun cluster ->
      let rt1 = runtime ~batch_size:1 cluster "writer" in
      let rt2 = runtime cluster "reader" in
      let r1 = Reg.attach rt1 ~oid:1 in
      let r2 = Reg.attach rt2 ~oid:1 in
      let events = ref [] in
      let record op started =
        events :=
          { Tango_harness.Linearizability.started; finished = Sim.Engine.now (); op }
          :: !events
      in
      for w = 0 to 3 do
        Sim.Engine.spawn (fun () ->
            for i = 1 to 3 do
              let v = (w * 3) + i in
              let started = Sim.Engine.now () in
              Reg.write r1 v;
              record (Tango_harness.Linearizability.Write v) started
            done)
      done;
      Sim.Engine.spawn (fun () ->
          for _ = 1 to 12 do
            let started = Sim.Engine.now () in
            let v = Reg.read r2 in
            record (Tango_harness.Linearizability.Read v) started;
            Sim.Engine.sleep 500.
          done);
      Sim.Engine.sleep 200_000.;
      check_int "all ops finished" 24 (List.length !events);
      check_bool "history linearizable" true
        (Tango_harness.Linearizability.check_register !events))

let test_pipelined_append_determinism () =
  (* Two runs with the same seed must produce byte-identical stats:
     the pipelined path only uses deterministic simulation
     primitives. *)
  let run () =
    Sim.Engine.run ~seed:42 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let rt = runtime ~batch_size:2 cluster "app" in
        let r = Reg.attach rt ~oid:1 in
        for w = 0 to 7 do
          Sim.Engine.spawn (fun () ->
              for i = 0 to 9 do
                Reg.write r ((w * 100) + i)
              done)
        done;
        Sim.Engine.sleep 100_000.;
        (Runtime.append_stats rt, Reg.read r))
  in
  check_bool "same seed, identical stats and value" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Replication basics (Figure 8 semantics)                            *)
(* ------------------------------------------------------------------ *)

let test_register_write_read () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app-0" in
      let r = Reg.attach rt ~oid:1 in
      check_int "initial" 0 (Reg.read r);
      Reg.write r 42;
      check_int "after write" 42 (Reg.read r))

let test_two_views_linearizable () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let r1 = Reg.attach rt1 ~oid:1 in
      let r2 = Reg.attach rt2 ~oid:1 in
      Reg.write r1 7;
      (* A linearizable read on another view must see the completed
         write immediately. *)
      check_int "remote view" 7 (Reg.read r2);
      Reg.write r2 9;
      check_int "back again" 9 (Reg.read r1))

let test_view_reconstruction () =
  (* Persistence: a brand-new view replays history. *)
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let r1 = Reg.attach rt1 ~oid:1 in
      for i = 1 to 20 do
        Reg.write r1 i
      done;
      let rt2 = runtime cluster "late-joiner" in
      let r2 = Reg.attach rt2 ~oid:1 in
      check_int "replayed" 20 (Reg.read r2);
      check_int "applied all" 20 (Runtime.applied_records rt2))

let test_time_travel () =
  with_cluster (fun cluster ->
      let rt1 = runtime ~batch_size:1 cluster "app-1" in
      let r1 = Reg.attach rt1 ~oid:1 in
      for i = 1 to 10 do
        Reg.write r1 i
      done;
      (* A fresh view synced to a prefix sees the historical state.
         With batch size 1, offsets 0..9 hold writes 1..10. *)
      let rt2 = runtime ~batch_size:1 cluster "historian" in
      let r2 = Reg.attach rt2 ~oid:1 in
      check_int "state as of offset 4" 4 (Reg.read_at r2 4);
      check_int "state as of offset 7" 7 (Reg.read_at r2 7);
      check_int "full state" 10 (Reg.read r2))

let test_version_tracking () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let m = Map_obj.attach rt ~oid:1 in
      check_int "no version" (-1) (Runtime.version_of rt ~oid:1 ());
      Map_obj.put m "a" "1";
      ignore (Map_obj.get m "a");
      let va = Runtime.version_of rt ~oid:1 ~key:"a" () in
      check_bool "a versioned" true (va >= 0);
      check_int "b untouched" (-1) (Runtime.version_of rt ~oid:1 ~key:"b" ());
      Map_obj.put m "b" "2";
      ignore (Map_obj.get m "b");
      check_bool "object version advances" true (Runtime.version_of rt ~oid:1 () > va);
      check_int "a unchanged" va (Runtime.version_of rt ~oid:1 ~key:"a" ()))

let test_fetch_log_index () =
  (* Views can store positions and fetch the payload lazily. *)
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let r = Reg.attach rt ~oid:1 in
      Reg.write r 1234;
      check_int "applied" 1234 (Reg.read r);
      let data = Runtime.fetch rt ~oid:1 r.Reg.last_pos in
      check_int "fetched from log" 1234 (Reg.decode data))

let test_batching_ratio () =
  with_cluster (fun cluster ->
      let rt = runtime ~batch_size:4 cluster "app" in
      let r = Reg.attach rt ~oid:1 in
      for w = 0 to 3 do
        Sim.Engine.spawn (fun () ->
            for i = 0 to 9 do
              Reg.write r ((w * 100) + i)
            done)
      done;
      Sim.Engine.sleep 100_000.;
      let stats = Runtime.append_stats rt in
      check_int "records" 40 stats.Runtime.as_records;
      check_bool
        (Printf.sprintf "entries %d well under records" stats.Runtime.as_entries)
        true
        (stats.Runtime.as_entries <= 25))

(* ------------------------------------------------------------------ *)
(* Transactions                                                       *)
(* ------------------------------------------------------------------ *)

let test_tx_single_object_rmw () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let r = Reg.attach rt ~oid:1 in
      Reg.write r 10;
      Runtime.begin_tx rt;
      let v = Reg.read r in
      Reg.write r (v + 5);
      Alcotest.check check_status "commits" Runtime.Committed (Runtime.end_tx rt);
      check_int "applied" 15 (Reg.read r))

let test_tx_conflict_aborts () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let r1 = Reg.attach rt1 ~oid:1 in
      let r2 = Reg.attach rt2 ~oid:1 in
      Reg.write r1 0;
      ignore (Reg.read r2);
      (* Both read, then both write: the later commit must abort. *)
      Runtime.begin_tx rt1;
      let a = Reg.read r1 in
      Reg.write r1 (a + 1);
      Runtime.begin_tx rt2;
      let b = Reg.read r2 in
      Reg.write r2 (b + 1);
      let s1 = Runtime.end_tx rt1 in
      let s2 = Runtime.end_tx rt2 in
      Alcotest.check check_status "first wins" Runtime.Committed s1;
      Alcotest.check check_status "second aborts" Runtime.Aborted s2;
      check_int "exactly one increment" 1 (Reg.read r1);
      check_int "views agree" 1 (Reg.read r2))

let test_tx_fine_grained_keys_no_conflict () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let m1 = Map_obj.attach rt1 ~oid:1 in
      let m2 = Map_obj.attach rt2 ~oid:1 in
      Map_obj.put m1 "a" "0";
      Map_obj.put m1 "b" "0";
      ignore (Map_obj.size m2);
      (* Touch disjoint keys concurrently: both must commit. *)
      Runtime.begin_tx rt1;
      ignore (Map_obj.get m1 "a");
      Map_obj.put m1 "a" "1";
      Runtime.begin_tx rt2;
      ignore (Map_obj.get m2 "b");
      Map_obj.put m2 "b" "2";
      Alcotest.check check_status "tx1" Runtime.Committed (Runtime.end_tx rt1);
      Alcotest.check check_status "tx2 (disjoint key)" Runtime.Committed (Runtime.end_tx rt2);
      Alcotest.(check (option string)) "a" (Some "1") (Map_obj.get m1 "a");
      Alcotest.(check (option string)) "b" (Some "2") (Map_obj.get m1 "b"))

let test_tx_same_key_conflicts () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let m1 = Map_obj.attach rt1 ~oid:1 in
      let m2 = Map_obj.attach rt2 ~oid:1 in
      Map_obj.put m1 "k" "0";
      ignore (Map_obj.get m2 "k");
      Runtime.begin_tx rt1;
      ignore (Map_obj.get m1 "k");
      Map_obj.put m1 "k" "1";
      Runtime.begin_tx rt2;
      ignore (Map_obj.get m2 "k");
      Map_obj.put m2 "k" "2";
      let s1 = Runtime.end_tx rt1 in
      let s2 = Runtime.end_tx rt2 in
      Alcotest.check check_status "tx1" Runtime.Committed s1;
      Alcotest.check check_status "tx2 conflicts" Runtime.Aborted s2)

let test_tx_read_only () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let r1 = Reg.attach rt1 ~oid:1 in
      Reg.write r1 5;
      Runtime.begin_tx rt1;
      ignore (Reg.read r1);
      Alcotest.check check_status "quiet read-only commits" Runtime.Committed (Runtime.end_tx rt1))

let test_tx_read_only_aborts_on_change () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let r1 = Reg.attach rt1 ~oid:1 in
      let r2 = Reg.attach rt2 ~oid:1 in
      Reg.write r1 5;
      ignore (Reg.read r2);
      Runtime.begin_tx rt2;
      ignore (Reg.read r2);
      (* Someone else changes the register before EndTX. *)
      Reg.write r1 6;
      Alcotest.check check_status "sees conflict at tail" Runtime.Aborted (Runtime.end_tx rt2);
      (* Stale mode never goes to the log: it validates against the
         local snapshot, which is self-consistent. *)
      Runtime.begin_tx rt2;
      ignore (Reg.read r2);
      Reg.write r1 7;
      Alcotest.check check_status "stale commit" Runtime.Committed (Runtime.end_tx ~stale:true rt2))

let test_tx_write_only_fast () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let r = Reg.attach rt ~oid:1 in
      Runtime.begin_tx rt;
      Reg.write r 1;
      Reg.write r 2;
      Alcotest.check check_status "write-only commits" Runtime.Committed (Runtime.end_tx rt);
      check_int "both applied in order" 2 (Reg.read r))

let test_tx_cross_object_atomicity () =
  with_cluster (fun cluster ->
      let rt1 = runtime ~batch_size:1 cluster "app-1" in
      let src = Map_obj.attach rt1 ~oid:1 in
      let dst = Map_obj.attach rt1 ~oid:2 in
      Map_obj.put src "item" "payload";
      (* Move atomically. *)
      Runtime.begin_tx rt1;
      (match Map_obj.get src "item" with
      | Some v ->
          Map_obj.put src "item" "";
          Map_obj.put dst "item" v
      | None -> Alcotest.fail "item missing");
      Alcotest.check check_status "move commits" Runtime.Committed (Runtime.end_tx rt1);
      (* Another client hosting both must never observe the item in
         neither or both maps: check every historical prefix. *)
      let tail = Corfu.Client.check (Runtime.client rt1) in
      for upto = 1 to tail do
        let rt = runtime cluster (Printf.sprintf "observer-%d" upto) in
        let s = Map_obj.attach rt ~oid:1 in
        let d = Map_obj.attach rt ~oid:2 in
        Runtime.query_helper rt ~oid:1 ~upto ();
        Runtime.query_helper rt ~oid:2 ~upto ();
        let in_src = Hashtbl.mem s.Map_obj.tbl "item" in
        let in_dst = Hashtbl.mem d.Map_obj.tbl "item" in
        check_bool
          (Printf.sprintf "exactly one holds the item at prefix %d" upto)
          true
          (in_src <> in_dst || ((not in_src) && not in_dst && upto <= 1))
      done)

let test_tx_remote_write_producer_consumer () =
  (* §4.1 case B/C: a producer appends into a queue it does not host;
     the consumer hosts the queue but not the producer's read object,
     so it relies on the decision record. *)
  with_cluster (fun cluster ->
      let producer = runtime cluster "producer" in
      let consumer = runtime cluster "consumer" in
      let src = Map_obj.attach producer ~oid:1 in
      (* producer hosts map 1 *)
      let sink = Map_obj.attach consumer ~oid:2 in
      (* consumer hosts map 2 *)
      Map_obj.put src "job" "run-me";
      Runtime.begin_tx producer;
      (match Map_obj.get src "job" with
      | Some v ->
          (* remote write to OID 2, which the producer does not host *)
          Runtime.update_helper producer ~oid:2 ~key:"job" (Map_obj.encode "job" v)
      | None -> Alcotest.fail "job missing");
      Alcotest.check check_status "remote-write tx commits" Runtime.Committed
        (Runtime.end_tx producer);
      Alcotest.(check (option string)) "consumer sees the job" (Some "run-me")
        (Map_obj.get sink "job"))

let test_tx_remote_write_abort_respected () =
  with_cluster (fun cluster ->
      let p1 = runtime cluster "p1" in
      let p2 = runtime cluster "p2" in
      let consumer = runtime cluster "consumer" in
      let src1 = Map_obj.attach p1 ~oid:1 in
      let src2 = Map_obj.attach p2 ~oid:1 in
      let sink = Map_obj.attach consumer ~oid:2 in
      Map_obj.put src1 "job" "v0";
      ignore (Map_obj.get src2 "job");
      (* Two producers race on the same read key; the loser's remote
         write must not reach the consumer. *)
      Runtime.begin_tx p1;
      ignore (Map_obj.get src1 "job");
      Map_obj.put src1 "job" "v1";
      Runtime.update_helper p1 ~oid:2 ~key:"out" (Map_obj.encode "out" "from-p1");
      Runtime.begin_tx p2;
      ignore (Map_obj.get src2 "job");
      Map_obj.put src2 "job" "v2";
      Runtime.update_helper p2 ~oid:2 ~key:"out" (Map_obj.encode "out" "from-p2");
      let s1 = Runtime.end_tx p1 in
      let s2 = Runtime.end_tx p2 in
      Alcotest.check check_status "p1 commits" Runtime.Committed s1;
      Alcotest.check check_status "p2 aborts" Runtime.Aborted s2;
      Alcotest.(check (option string)) "consumer applies only the winner" (Some "from-p1")
        (Map_obj.get sink "out"))

let test_tx_remote_read_rejected () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let _local = Map_obj.attach rt ~oid:1 in
      Runtime.begin_tx rt;
      (match Runtime.query_helper rt ~oid:99 () with
      | () -> Alcotest.fail "remote read inside tx must be rejected"
      | exception Invalid_argument _ -> ());
      Runtime.abort_tx rt)

let test_tx_nested_rejected () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      Runtime.begin_tx rt;
      (match Runtime.begin_tx rt with
      | () -> Alcotest.fail "nested tx must be rejected"
      | exception Runtime.Nested_transaction -> ());
      Runtime.abort_tx rt;
      match Runtime.end_tx rt with
      | _ -> Alcotest.fail "end without begin must be rejected"
      | exception Runtime.No_transaction -> ())

let test_decision_watchdog_reconstructs () =
  (* A generator crashes between the commit and decision records: the
     consumer must reconstruct the outcome from the log after the
     timeout (§4.1, Failure Handling). *)
  with_cluster (fun cluster ->
      let gen = runtime ~decision_timeout_us:20_000. cluster "doomed" in
      let consumer = runtime ~decision_timeout_us:20_000. cluster "consumer" in
      let src = Map_obj.attach gen ~oid:1 in
      let sink = Map_obj.attach consumer ~oid:2 in
      Map_obj.put src "k" "v";
      ignore (Map_obj.get src "k");
      (* Forge the crash: append the commit record directly, without
         the follow-up decision, dodging the runtime's EndTX. *)
      let commit =
        Record.Commit
          {
            Record.c_reads = [ (1, Some "k", Runtime.version_of gen ~oid:1 ~key:"k" ()) ];
            c_writes = [ { Record.u_oid = 2; u_key = Some "out"; u_data = Map_obj.encode "out" "ok" } ];
            c_needs_decision = true;
          }
      in
      ignore
        (Corfu.Client.append (Runtime.client gen) ~streams:[ 2 ] (Record.encode_payload [ commit ]));
      let started = Sim.Engine.now () in
      Alcotest.(check (option string)) "reconstructed and applied" (Some "ok")
        (Map_obj.get sink "out");
      check_bool "waited for the timeout" true (Sim.Engine.now () -. started >= 20_000.))

let prop_concurrent_counter_serializable =
  (* N clients transactionally increment one register; committed
     increments must be exactly the final value (lost-update freedom,
     the paper's 2PL-equivalent isolation claim). *)
  QCheck.Test.make ~name:"transactional increments are serializable" ~count:15
    QCheck.(pair (int_range 2 4) (int_range 1 42))
    (fun (nclients, seed) ->
      Sim.Engine.run ~seed (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let committed = ref 0 in
          let views = ref [] in
          for i = 1 to nclients do
            let rt = runtime cluster (Printf.sprintf "app-%d" i) in
            let r = Reg.attach rt ~oid:1 in
            views := (rt, r) :: !views;
            Sim.Engine.spawn (fun () ->
                for _ = 1 to 5 do
                  Runtime.begin_tx rt;
                  let v = Reg.read r in
                  Reg.write r (v + 1);
                  match Runtime.end_tx rt with
                  | Runtime.Committed -> incr committed
                  | Runtime.Aborted -> ()
                done)
          done;
          Sim.Engine.sleep 3_000_000.;
          List.for_all (fun (_, r) -> Reg.read r = !committed) !views))

(* ------------------------------------------------------------------ *)
(* Checkpoints, GC, directory                                         *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_and_replay () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let r1 = Reg.attach rt1 ~oid:1 in
      for i = 1 to 5 do
        Reg.write r1 i
      done;
      ignore (Reg.read r1);
      let info = Runtime.checkpoint rt1 ~oid:1 in
      check_bool "position returned" true (info.Runtime.ckpt_pos > 0);
      check_bool "base below position" true (info.Runtime.ckpt_base < info.Runtime.ckpt_pos);
      Reg.write r1 99;
      let rt2 = runtime cluster "fresh" in
      let r2 = Reg.attach rt2 ~oid:1 in
      check_int "replay through checkpoint" 99 (Reg.read r2))

let test_directory_declare_and_race () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let d1 = Directory.attach rt1 in
      let d2 = Directory.attach rt2 in
      let oid_a = Directory.declare d1 "free-list" in
      let oid_b = Directory.declare d2 "alloc-table" in
      check_bool "distinct oids" true (oid_a <> oid_b);
      check_bool "not the directory" true (oid_a <> Directory.oid && oid_b <> Directory.oid);
      (* Concurrent declaration of the same name converges. *)
      let r1 = ref (-1) and r2 = ref (-2) in
      Sim.Engine.spawn (fun () -> r1 := Directory.declare d1 "shared");
      Sim.Engine.spawn (fun () -> r2 := Directory.declare d2 "shared");
      Sim.Engine.sleep 1_000_000.;
      check_int "same oid from both" !r1 !r2;
      Alcotest.(check (option int)) "lookup" (Some !r1) (Directory.lookup d1 "shared");
      check_int "bindings" 3 (List.length (Directory.names d1)))

let test_directory_gc () =
  with_cluster (fun cluster ->
      let rt = runtime ~batch_size:1 cluster "app" in
      let dir = Directory.attach rt in
      let roid = Directory.declare dir "the-register" in
      let r = Reg.attach rt ~oid:roid in
      for i = 1 to 30 do
        Reg.write r i
      done;
      ignore (Reg.read r);
      let info = Runtime.checkpoint rt ~oid:roid in
      let ckpt_pos = info.Runtime.ckpt_base + 1 in
      (* Nothing can be trimmed until the object forgets. *)
      check_int "pinned" 0 (Directory.collect dir);
      Directory.forget dir ~oid:roid ~below:ckpt_pos;
      (* The directory itself also pins; forget it too. *)
      let dir_tail = Corfu.Client.check (Runtime.client rt) in
      ignore (Runtime.checkpoint rt ~oid:Directory.oid);
      Directory.forget dir ~oid:Directory.oid ~below:(Record.pos ~offset:dir_tail ~slot:0);
      let trimmed = Directory.collect dir in
      check_bool "log trimmed" true (trimmed > 0);
      check_bool "trim below checkpoint" true (trimmed <= Record.pos_offset ckpt_pos);
      (* A brand-new client must still reconstruct from the checkpoint. *)
      let rt2 = runtime cluster "post-gc" in
      let r2 = Reg.attach rt2 ~oid:roid in
      check_int "state recovered from checkpoint" 30 (Reg.read r2))

(* Map_obj with checkpoint support, for GC tests. *)
module Ckpt_map = struct
  include Map_obj

  let snapshot t =
    let b = Buffer.create 256 in
    Buffer.add_int32_be b (Int32.of_int (Hashtbl.length t.Map_obj.tbl));
    Hashtbl.iter
      (fun k v ->
        let kv = Map_obj.encode k v in
        Buffer.add_int32_be b (Int32.of_int (Bytes.length kv));
        Buffer.add_bytes b kv)
      t.Map_obj.tbl;
    Buffer.to_bytes b

  let load t data =
    Hashtbl.reset t.Map_obj.tbl;
    let at = ref 4 in
    for _ = 1 to Int32.to_int (Bytes.get_int32_be data 0) do
      let len = Int32.to_int (Bytes.get_int32_be data !at) in
      at := !at + 4;
      let k, v = Map_obj.decode (Bytes.sub data !at len) in
      at := !at + len;
      Hashtbl.replace t.Map_obj.tbl k v
    done

  let attach rt ~oid =
    let t =
      { Map_obj.rt; moid = oid; tbl = Hashtbl.create 16 }
    in
    Runtime.register rt ~oid
      {
        Runtime.apply =
          (fun ~pos:_ ~key:_ data ->
            let k, v = Map_obj.decode data in
            if v = "" then Hashtbl.remove t.Map_obj.tbl k else Hashtbl.replace t.Map_obj.tbl k v);
        checkpoint = Some (fun () -> snapshot t);
        load_checkpoint = Some (fun data -> load t data);
      };
    t
end

let test_gc_trim_gap_repair () =
  (* Regression: a cold view can skip trimmed history yet still reach
     the checkpoint's base version (because the base write itself
     survives the trim), which used to make it skip the checkpoint
     load and come up with a sliver of the state. *)
  with_cluster (fun cluster ->
      let rt = runtime ~batch_size:1 cluster "writer" in
      let m = Ckpt_map.attach rt ~oid:1 in
      for i = 1 to 40 do
        Ckpt_map.put m (Printf.sprintf "k%d" (i mod 10)) (string_of_int i)
      done;
      check_int "ten keys live" 10 (Ckpt_map.size m);
      let info = Runtime.checkpoint rt ~oid:1 in
      Runtime.trim_below rt (Record.pos_offset (info.Runtime.ckpt_base + 1));
      let rt2 = runtime cluster "cold" in
      let m2 = Ckpt_map.attach rt2 ~oid:1 in
      check_int "cold view repaired from checkpoint" 10 (Ckpt_map.size m2);
      Alcotest.(check (option string)) "latest values" (Some "40") (Ckpt_map.get m2 "k0"))

let prop_directory_unique_oids =
  (* Concurrent declarations from several clients always yield unique,
     globally agreed OIDs. *)
  QCheck.Test.make ~name:"directory allocates unique agreed oids" ~count:10
    QCheck.(pair (int_range 1 500) (int_range 2 4))
    (fun (seed, nclients) ->
      Sim.Engine.run ~seed (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let dirs =
            List.init nclients (fun i ->
                Directory.attach (runtime cluster (Printf.sprintf "c%d" i)))
          in
          let results = Hashtbl.create 16 in
          List.iteri
            (fun i dir ->
              Sim.Engine.spawn (fun () ->
                  (* two private names and one contended name each *)
                  List.iter
                    (fun name ->
                      let oid = Directory.declare dir name in
                      Hashtbl.replace results (i, name) oid)
                    [ Printf.sprintf "private-%d-a" i; Printf.sprintf "private-%d-b" i; "shared" ]))
            dirs;
          Sim.Engine.sleep 3_000_000.;
          let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
          let by_name = Hashtbl.create 16 in
          List.iter (fun ((_, name), oid) -> Hashtbl.add by_name name oid) bindings;
          (* same name -> same oid everywhere *)
          let shared_oids = List.sort_uniq compare (Hashtbl.find_all by_name "shared") in
          let all_names =
            List.sort_uniq compare (List.map (fun ((_, name), _) -> name) bindings)
          in
          let distinct_oids =
            List.sort_uniq compare
              (List.map (fun name -> List.hd (Hashtbl.find_all by_name name)) all_names)
          in
          List.length shared_oids = 1
          && List.length distinct_oids = List.length all_names
          && List.for_all
               (fun dir -> Directory.lookup dir "shared" = Some (List.hd shared_oids))
               dirs))

(* ------------------------------------------------------------------ *)
(* Array-staged payload encode and the pooled batch core              *)
(* ------------------------------------------------------------------ *)

let test_record_encode_payload_array () =
  let arr = Array.of_list sample_records in
  let b = Record.encode_payload_array arr ~len:(Array.length arr) in
  check_bool "array encode matches list encode" true
    (Bytes.equal b (Record.encode_payload sample_records));
  (* A shorter [len] encodes only the prefix, ignoring the rest. *)
  let b1 = Record.encode_payload_array arr ~len:1 in
  check_bool "prefix encode" true (Bytes.equal b1 (Record.encode_payload [ List.hd sample_records ]));
  (match Record.encode_payload_array arr ~len:0 with
  | _ -> Alcotest.fail "len 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Record.encode_payload_array arr ~len:(Array.length arr + 1) with
  | _ -> Alcotest.fail "len past the array must be rejected"
  | exception Invalid_argument _ -> ()

let test_batch_core_lifecycle () =
  let bc = Batch_core.create ~cap:2 ~dummy:(-1) in
  check_int "fresh forming" 0 (Batch_core.forming_len bc);
  check_int "fresh queued" 0 (Batch_core.queued bc);
  check_int "cap" 2 (Batch_core.capacity bc);
  let r1 = List.hd sample_records and r2 = List.nth sample_records 1 in
  check_bool "first submit leaves room" false (Batch_core.submit bc r1 [ 9; 3; 3 ] 100);
  check_int "forming grows" 1 (Batch_core.forming_len bc);
  check_bool "cap-th submit reports full" true (Batch_core.submit bc r2 [ 3 ] 101);
  Batch_core.seal bc;
  check_int "sealed" 1 (Batch_core.queued bc);
  check_int "forming emptied" 0 (Batch_core.forming_len bc);
  (* Stream set: sorted, deduped union of the cells' streams. *)
  Alcotest.(check (list int)) "stream set" [ 3; 9 ] (Batch_core.front_streams bc);
  check_int "group of one" 1 (Batch_core.group bc ~max_run:8);
  let b = Batch_core.pop bc in
  check_int "popped length" 2 (Batch_core.length b);
  check_int "data slot 0" 100 (Batch_core.data b 0);
  check_int "data slot 1" 101 (Batch_core.data b 1);
  let payload = Batch_core.encode bc b in
  check_bool "encode matches records" true
    (Bytes.equal payload (Record.encode_payload [ r1; r2 ]));
  Batch_core.recycle bc b;
  check_int "queue drained" 0 (Batch_core.queued bc)

let test_batch_core_grouping () =
  (* Consecutive batches with the same stream set group under one
     grant; a different set breaks the run. *)
  let bc = Batch_core.create ~cap:1 ~dummy:() in
  let r = List.hd sample_records in
  let seal_one streams =
    ignore (Batch_core.submit bc r streams ());
    Batch_core.seal bc
  in
  seal_one [ 1; 2 ];
  seal_one [ 2; 1 ];  (* same set, different order *)
  seal_one [ 2 ];
  seal_one [ 1; 2 ];
  check_int "queued" 4 (Batch_core.queued bc);
  check_int "leading run" 2 (Batch_core.group bc ~max_run:8);
  check_int "max_run caps the run" 1 (Batch_core.group bc ~max_run:1);
  Batch_core.recycle bc (Batch_core.pop bc);
  Batch_core.recycle bc (Batch_core.pop bc);
  Alcotest.(check (list int)) "run breaker at front" [ 2 ] (Batch_core.front_streams bc);
  check_int "singleton run" 1 (Batch_core.group bc ~max_run:8);
  Batch_core.recycle bc (Batch_core.pop bc);
  Batch_core.recycle bc (Batch_core.pop bc);
  check_int "drained" 0 (Batch_core.queued bc);
  match Batch_core.group bc ~max_run:1 with
  | _ -> Alcotest.fail "group on empty queue must be rejected"
  | exception Invalid_argument _ -> ()

let test_batch_core_pool_reuse () =
  (* Steady state recycles pooled cells: many seal/pop/recycle cycles
     keep working and keep results correct. *)
  let bc = Batch_core.create ~cap:3 ~dummy:(-1) in
  let arr = Array.of_list sample_records in
  for round = 0 to 49 do
    for i = 0 to 2 do
      ignore (Batch_core.submit bc arr.(i mod Array.length arr) [ i ] ((round * 3) + i))
    done;
    Batch_core.seal bc;
    let b = Batch_core.pop bc in
    check_int "length" 3 (Batch_core.length b);
    for i = 0 to 2 do
      check_int "data" ((round * 3) + i) (Batch_core.data b i)
    done;
    let payload = Batch_core.encode bc b in
    check_bool "payload stable across reuse" true
      (Bytes.equal payload
         (Record.encode_payload [ arr.(0); arr.(1 mod Array.length arr); arr.(2 mod Array.length arr) ]));
    Batch_core.recycle bc b
  done;
  check_int "nothing queued" 0 (Batch_core.queued bc);
  check_int "nothing forming" 0 (Batch_core.forming_len bc)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "tango-core"
    [
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "position math" `Quick test_record_pos_math;
          Alcotest.test_case "streams_of" `Quick test_record_streams_of;
          Alcotest.test_case "rejects bad payloads" `Quick test_record_rejects_bad;
          Alcotest.test_case "array encode matches list encode" `Quick
            test_record_encode_payload_array;
        ] );
      ( "batch-core",
        [
          Alcotest.test_case "submit/seal/pop/encode/recycle" `Quick test_batch_core_lifecycle;
          Alcotest.test_case "stream-set grouping" `Quick test_batch_core_grouping;
          Alcotest.test_case "pool reuse stays correct" `Quick test_batch_core_pool_reuse;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "fills batches" `Quick test_batcher_fills_batches;
          Alcotest.test_case "linger flushes partial" `Quick test_batcher_linger_flushes_partial;
          Alcotest.test_case "deep window keeps log order" `Quick
            test_batcher_deep_window_ordering;
          Alcotest.test_case "pipelined writes linearizable" `Quick
            test_pipelined_writes_linearizable;
          Alcotest.test_case "pipelined appends deterministic" `Quick
            test_pipelined_append_determinism;
        ] );
      ( "replication",
        [
          Alcotest.test_case "register write/read" `Quick test_register_write_read;
          Alcotest.test_case "two views linearizable" `Quick test_two_views_linearizable;
          Alcotest.test_case "view reconstruction" `Quick test_view_reconstruction;
          Alcotest.test_case "time travel" `Quick test_time_travel;
          Alcotest.test_case "version tracking" `Quick test_version_tracking;
          Alcotest.test_case "fetch (log as index)" `Quick test_fetch_log_index;
          Alcotest.test_case "batching ratio" `Quick test_batching_ratio;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "single-object RMW" `Quick test_tx_single_object_rmw;
          Alcotest.test_case "conflict aborts" `Quick test_tx_conflict_aborts;
          Alcotest.test_case "fine-grained keys commute" `Quick
            test_tx_fine_grained_keys_no_conflict;
          Alcotest.test_case "same key conflicts" `Quick test_tx_same_key_conflicts;
          Alcotest.test_case "read-only" `Quick test_tx_read_only;
          Alcotest.test_case "read-only aborts on change" `Quick test_tx_read_only_aborts_on_change;
          Alcotest.test_case "write-only fast path" `Quick test_tx_write_only_fast;
          Alcotest.test_case "cross-object atomicity" `Quick test_tx_cross_object_atomicity;
          Alcotest.test_case "remote-write producer/consumer" `Quick
            test_tx_remote_write_producer_consumer;
          Alcotest.test_case "remote-write abort respected" `Quick
            test_tx_remote_write_abort_respected;
          Alcotest.test_case "remote read rejected" `Quick test_tx_remote_read_rejected;
          Alcotest.test_case "nested tx rejected" `Quick test_tx_nested_rejected;
          Alcotest.test_case "decision watchdog reconstructs" `Quick
            test_decision_watchdog_reconstructs;
        ] );
      ( "checkpoint-gc-directory",
        [
          Alcotest.test_case "checkpoint and replay" `Quick test_checkpoint_and_replay;
          Alcotest.test_case "directory declare and race" `Quick test_directory_declare_and_race;
          Alcotest.test_case "directory gc" `Quick test_directory_gc;
          Alcotest.test_case "trim-gap repair" `Quick test_gc_trim_gap_repair;
        ] );
      ( "properties",
        qcheck
          [
            prop_record_roundtrip;
            prop_concurrent_counter_serializable;
            prop_directory_unique_oids;
          ] );
    ]
