(* Tests for the discrete-event simulation substrate. *)

open Sim

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_run_returns_result () =
  let r = Engine.run (fun () -> 41 + 1) in
  check_int "result" 42 r

let test_clock_starts_at_zero () =
  let t = Engine.run (fun () -> Engine.now ()) in
  check_float "t0" 0. t

let test_sleep_advances_clock () =
  let t =
    Engine.run (fun () ->
        Engine.sleep 10.;
        Engine.sleep 5.5;
        Engine.now ())
  in
  check_float "now" 15.5 t

let test_negative_sleep_clamped () =
  let t =
    Engine.run (fun () ->
        Engine.sleep (-4.);
        Engine.now ())
  in
  check_float "now" 0. t

let test_spawn_runs_concurrently () =
  let order = ref [] in
  let mark tag = order := tag :: !order in
  Engine.run (fun () ->
      Engine.spawn (fun () ->
          Engine.sleep 2.;
          mark "b");
      Engine.spawn (fun () ->
          Engine.sleep 1.;
          mark "a");
      Engine.sleep 3.;
      mark "main");
  Alcotest.(check (list string)) "order" [ "a"; "b"; "main" ] (List.rev !order)

let test_same_time_fifo () =
  (* Events at the same timestamp run in scheduling order. *)
  let order = ref [] in
  Engine.run (fun () ->
      for i = 1 to 5 do
        Engine.spawn (fun () -> order := i :: !order)
      done;
      Engine.sleep 1.);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_main_completion_stops_world () =
  (* A server fiber blocked forever must not prevent termination. *)
  let r =
    Engine.run (fun () ->
        let mb = Mailbox.create () in
        Engine.spawn (fun () ->
            let (_ : int) = Mailbox.recv mb in
            ());
        Engine.sleep 1.;
        "done")
  in
  Alcotest.(check string) "result" "done" r

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock" Engine.Deadlock (fun () ->
      Engine.run (fun () ->
          let iv : int Ivar.t = Ivar.create () in
          ignore (Ivar.read iv)))

let test_horizon () =
  Alcotest.check_raises "horizon" (Engine.Horizon_reached 10.) (fun () ->
      Engine.run ~until:10. (fun () -> Engine.sleep 100.))

let test_fiber_exception_propagates () =
  Alcotest.check_raises "exn" (Failure "boom") (fun () ->
      Engine.run (fun () ->
          Engine.spawn (fun () -> failwith "boom");
          Engine.sleep 1.))

let test_nested_run_rejected () =
  Engine.run (fun () ->
      match Engine.run (fun () -> ()) with
      | () -> Alcotest.fail "nested run should be rejected"
      | exception Invalid_argument _ -> ())

let test_fiber_ids_unique () =
  Engine.run (fun () ->
      let ids = ref [] in
      for _ = 1 to 3 do
        Engine.spawn (fun () -> ids := Engine.fiber_id () :: !ids)
      done;
      Engine.sleep 1.;
      let sorted = List.sort_uniq compare !ids in
      check_int "unique ids" 3 (List.length sorted))

let test_schedule_thunk () =
  Engine.run (fun () ->
      let fired = ref false in
      Engine.schedule ~after:5. (fun () -> fired := true);
      Engine.sleep 4.;
      check_bool "not yet" false !fired;
      Engine.sleep 2.;
      check_bool "fired" true !fired)

let test_determinism () =
  let experiment () =
    Engine.run ~seed:7 (fun () ->
        let acc = ref 0. in
        for _ = 1 to 50 do
          let d = Rng.float (Engine.rng ()) 10. in
          Engine.sleep d;
          acc := !acc +. Engine.now ()
        done;
        !acc)
  in
  check_float "same trace" (experiment ()) (experiment ())

(* ------------------------------------------------------------------ *)
(* Ivar                                                               *)
(* ------------------------------------------------------------------ *)

let test_ivar_fill_then_read () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      Ivar.fill iv 9;
      check_int "value" 9 (Ivar.read iv))

let test_ivar_blocks_until_filled () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      Engine.spawn (fun () ->
          Engine.sleep 10.;
          Ivar.fill iv "hello");
      let v = Ivar.read iv in
      Alcotest.(check string) "value" "hello" v;
      check_float "woke at fill time" 10. (Engine.now ()))

let test_ivar_multiple_readers () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      let seen = ref 0 in
      for _ = 1 to 4 do
        Engine.spawn (fun () ->
            let (_ : int) = Ivar.read iv in
            incr seen)
      done;
      Engine.sleep 1.;
      Ivar.fill iv 1;
      Engine.sleep 1.;
      check_int "all woke" 4 !seen)

let test_ivar_double_fill_rejected () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      Ivar.fill iv 1;
      match Ivar.fill iv 2 with
      | () -> Alcotest.fail "double fill should be rejected"
      | exception Invalid_argument _ -> ())

let test_ivar_peek () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      check_bool "empty" false (Ivar.is_filled iv);
      Alcotest.(check (option int)) "peek empty" None (Ivar.peek iv);
      Ivar.fill iv 3;
      Alcotest.(check (option int)) "peek full" (Some 3) (Ivar.peek iv))

(* ------------------------------------------------------------------ *)
(* Mailbox                                                            *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3;
      check_int "a" 1 (Mailbox.recv mb);
      check_int "b" 2 (Mailbox.recv mb);
      check_int "c" 3 (Mailbox.recv mb))

let test_mailbox_blocking_recv () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      Engine.spawn (fun () ->
          Engine.sleep 5.;
          Mailbox.send mb 42);
      let v = Mailbox.recv mb in
      check_int "v" 42 v;
      check_float "blocked until send" 5. (Engine.now ()))

let test_mailbox_waiters_fifo () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      let log = ref [] in
      for i = 1 to 3 do
        Engine.spawn (fun () ->
            let v = Mailbox.recv mb in
            log := (i, v) :: !log)
      done;
      Engine.sleep 1.;
      Mailbox.send mb 10;
      Mailbox.send mb 20;
      Mailbox.send mb 30;
      Engine.sleep 1.;
      Alcotest.(check (list (pair int int)))
        "waiters served in order" [ (1, 10); (2, 20); (3, 30) ] (List.rev !log))

let test_mailbox_try_recv () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
      Mailbox.send mb 7;
      check_int "len" 1 (Mailbox.length mb);
      Alcotest.(check (option int)) "some" (Some 7) (Mailbox.try_recv mb))

(* ------------------------------------------------------------------ *)
(* Resource                                                           *)
(* ------------------------------------------------------------------ *)

let test_resource_serializes () =
  (* Two fibers share a capacity-1 resource: the second waits. *)
  Engine.run (fun () ->
      let r = Resource.create ~name:"ssd" ~capacity:1 () in
      let finish = ref [] in
      Engine.spawn (fun () ->
          Resource.use r 10.;
          finish := ("a", Engine.now ()) :: !finish);
      Engine.spawn (fun () ->
          Resource.use r 10.;
          finish := ("b", Engine.now ()) :: !finish);
      Engine.sleep 30.;
      Alcotest.(check (list (pair string (float 1e-9))))
        "sequential" [ ("a", 10.); ("b", 20.) ] (List.rev !finish))

let test_resource_parallel_capacity () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"cpu" ~capacity:2 () in
      let finish = ref [] in
      for _ = 1 to 2 do
        Engine.spawn (fun () ->
            Resource.use r 10.;
            finish := Engine.now () :: !finish)
      done;
      Engine.sleep 30.;
      Alcotest.(check (list (float 1e-9))) "parallel" [ 10.; 10. ] !finish)

let test_resource_fifo_queue () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"x" ~capacity:1 () in
      let order = ref [] in
      for i = 1 to 4 do
        Engine.spawn (fun () ->
            Resource.use r 5.;
            order := i :: !order)
      done;
      Engine.sleep 100.;
      Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !order))

let test_resource_throughput_cap () =
  (* A 10 µs service time caps a saturated resource at 100K ops/s. *)
  let rate =
    Engine.run (fun () ->
        let r = Resource.create ~name:"x" ~capacity:1 () in
        let m = ref 0 in
        for _ = 1 to 8 do
          Engine.spawn (fun () ->
              for _ = 1 to 100 do
                Resource.use r 10.;
                incr m
              done)
        done;
        Engine.sleep 8_000.;
        float_of_int !m /. 8_000. *. 1e6)
  in
  Alcotest.(check bool) "rate close to 100K" true (abs_float (rate -. 100_000.) < 2_000.)

let test_resource_release_without_acquire () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"x" ~capacity:1 () in
      match Resource.release r with
      | () -> Alcotest.fail "release without acquire should be rejected"
      | exception Invalid_argument _ -> ())

let test_resource_busy_time () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"x" ~capacity:1 () in
      Resource.use r 25.;
      Engine.sleep 75.;
      check_float "busy integral" 25. (Resource.busy_time r))

(* ------------------------------------------------------------------ *)
(* Net                                                                *)
(* ------------------------------------------------------------------ *)

let make_net ?(jitter = 0.) () = Net.create ~latency:50. ~bandwidth:125. ~jitter ()

let test_net_rpc_roundtrip () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let b = Net.add_host net "b" in
      let echo = Net.service b ~name:"echo" (fun x -> x * 2) in
      let r = Net.call ~from:a echo 21 in
      check_int "resp" 42 r;
      (* Two hops of 64B each way: 2*(2*64/125 + 50) ≈ 102 µs. *)
      let t = Engine.now () in
      check_bool "latency sane" true (t > 100. && t < 110.))

let test_net_loopback_is_free () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let echo = Net.service a ~name:"echo" (fun x -> x) in
      let r = Net.call ~from:a echo 5 in
      check_int "resp" 5 r;
      check_float "no time passed" 0. (Engine.now ()))

let test_net_bandwidth_charged () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let b = Net.add_host net "b" in
      let sink = Net.service b ~name:"sink" (fun (_ : string) -> ()) in
      Net.call ~req_bytes:4096 ~resp_bytes:64 ~from:a sink "payload";
      (* Request: 2*32.77 + 50; response: 2*0.5 + 50 -> ~166-167 µs *)
      let t = Engine.now () in
      check_bool "4KB serialization charged" true (t > 160. && t < 175.))

let test_net_server_saturation () =
  (* Many clients calling a service that charges 100 µs on one CPU
     core: aggregate throughput caps at 10K/s. *)
  let count =
    Engine.run (fun () ->
        let net = make_net () in
        let server = Net.add_host ~cores:1 net "srv" in
        let svc =
          Net.service server ~name:"work" (fun () -> Resource.use (Net.host_cpu server) 100.)
        in
        let n = ref 0 in
        for i = 1 to 10 do
          let client = Net.add_host net (Printf.sprintf "c%d" i) in
          Engine.spawn (fun () ->
              for _ = 1 to 50 do
                Net.call ~from:client svc ();
                incr n
              done)
        done;
        Engine.sleep 20_000.;
        !n)
  in
  (* 20 ms at 10K/s is ~200 completions. *)
  check_bool "server-bound" true (count > 150 && count <= 210)

let test_net_send_is_async () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let b = Net.add_host net "b" in
      let got = ref [] in
      let svc = Net.service b ~name:"ingest" (fun v -> got := v :: !got) in
      Net.send ~from:a svc 1;
      let sent_at = Engine.now () in
      check_bool "sender only pays serialization" true (sent_at < 2.);
      Engine.sleep 100.;
      Alcotest.(check (list int)) "delivered" [ 1 ] !got)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let test_fault_judge_crash_and_partition () =
  Engine.run (fun () ->
      let f = Fault.create () in
      let deliver src dst = match Fault.judge f ~src ~dst with Fault.Deliver _ -> true | Fault.Drop -> false in
      check_bool "idle delivers" true (deliver "a" "b");
      Fault.crash f "b";
      check_bool "to crashed drops" false (deliver "a" "b");
      check_bool "from crashed drops" false (deliver "b" "a");
      Fault.restart f "b";
      check_bool "restart restores" true (deliver "a" "b");
      Fault.partition f [ [ "a" ]; [ "b" ] ];
      check_bool "across partition drops" false (deliver "a" "b");
      (* hosts named in no component share the implicit one *)
      check_bool "implicit component connected" true (deliver "c" "d");
      check_bool "named to implicit drops" false (deliver "a" "c");
      Fault.heal f;
      check_bool "heal restores" true (deliver "a" "b"))

let test_fault_edge_delay_observed () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let b = Net.add_host net "b" in
      let f = Fault.create () in
      Net.install_fault net f;
      let echo = Net.service b ~name:"echo" (fun x -> x) in
      (* quiescent controller: same cost as the fault-free path *)
      ignore (Net.call ~from:a echo 0);
      let base = Engine.now () in
      check_bool "baseline sane" true (base > 100. && base < 110.);
      Fault.degrade f ~src:"a" ~dst:"b" ~delay_us:500. ();
      ignore (Net.call ~from:a echo 0);
      let dt = Engine.now () -. base in
      (* request leg pays the extra 500 µs; response leg is untouched *)
      check_bool "delay added once" true (dt > base +. 490. && dt < base +. 520.);
      Fault.clear_edge f ~src:"a" ~dst:"b";
      let t2 = Engine.now () in
      ignore (Net.call ~from:a echo 0);
      check_bool "clear restores" true (Engine.now () -. t2 < 110.))

let test_fault_resource_fail_repair () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"ssd" ~capacity:1 () in
      Resource.acquire r;
      (* a fiber queued behind the holder must be woken with failure *)
      let outcome = ref "pending" in
      Engine.spawn (fun () ->
          match Resource.acquire r with
          | () -> outcome := "acquired"
          | exception Resource.Failed _ -> outcome := "failed");
      Engine.sleep 1.;
      Resource.fail r;
      Engine.sleep 1.;
      Alcotest.(check string) "waiter drained with failure" "failed" !outcome;
      check_bool "failed flag" true (Resource.failed r);
      (match Resource.use r 1. with
      | () -> Alcotest.fail "use on failed resource must raise"
      | exception Resource.Failed _ -> ());
      Resource.release r;
      Resource.repair r;
      Resource.use r 1.;
      check_bool "repaired" false (Resource.failed r))

let test_fault_call_r_paths () =
  Engine.run (fun () ->
      let net = make_net () in
      let a = Net.add_host net "a" in
      let b = Net.add_host net "b" in
      let f = Fault.create () in
      Net.install_fault net f;
      let echo = Net.service b ~name:"echo" (fun x -> x + 1) in
      (match Net.call_r ~from:a echo 1 with
      | Ok 2 -> ()
      | _ -> Alcotest.fail "healthy call_r");
      Fault.crash f "b";
      let t0 = Engine.now () in
      (match Net.call_r ~timeout_us:1_000. ~from:a echo 1 with
      | Error Net.Rpc_timeout -> ()
      | _ -> Alcotest.fail "dead server must time out");
      check_float "timeout charged" 1_000. (Engine.now () -. t0);
      Fault.restart f "b";
      (match Net.call_r ~timeout_us:1_000. ~from:a echo 5 with
      | Ok 6 -> ()
      | _ -> Alcotest.fail "restart restores call_r");
      Fault.crash f "a";
      (match Net.call_r ~timeout_us:1_000. ~from:a echo 1 with
      | Error Net.Rpc_dead -> ()
      | _ -> Alcotest.fail "crashed caller fails fast"))

let test_fault_schedule_is_virtual_time () =
  Engine.run (fun () ->
      let f = Fault.create () in
      Fault.plan f [ (100., Fault.Crash "x"); (200., Fault.Restart "x") ];
      check_bool "not yet" false (Fault.is_crashed f "x");
      Engine.sleep 150.;
      check_bool "crashed at 100" true (Fault.is_crashed f "x");
      Engine.sleep 100.;
      check_bool "restarted at 200" false (Fault.is_crashed f "x");
      match Fault.events f with
      | [ e1; e2 ] ->
          check_float "first at 100" 100. e1.Fault.ev_time;
          check_float "second at 200" 200. e2.Fault.ev_time
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

(* The determinism contract: same seeds, same plan => byte-identical
   trace, including drop decisions from the controller's private rng. *)
let test_fault_trace_deterministic () =
  let scenario () =
    Trace.capture (fun () ->
        Engine.run ~seed:5 (fun () ->
            let net = make_net ~jitter:0.05 () in
            let a = Net.add_host net "a" in
            let b = Net.add_host net "b" in
            let f = Fault.create ~seed:3 () in
            Net.install_fault net f;
            Fault.degrade f ~src:"a" ~dst:"b" ~drop:0.3 ~delay_us:20. ~jitter_us:10. ();
            Fault.plan f [ (3_000., Fault.Crash "b"); (6_000., Fault.Restart "b") ];
            let echo = Net.service b ~name:"echo" (fun x -> x) in
            let got = ref 0 in
            for i = 1 to 40 do
              (match Net.call_r ~timeout_us:400. ~from:a echo i with
              | Ok _ -> incr got
              | Error _ -> Trace.f ~host:"a" "test" "rpc %d lost" i);
              Engine.sleep 100.
            done;
            (!got, Engine.now ())))
  in
  let r1, t1 = scenario () in
  let r2, t2 = scenario () in
  check_bool "some rpcs lost" true (fst r1 < 40);
  check_bool "same result" true (r1 = r2);
  Alcotest.(check string) "byte-identical trace" t1 t2

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_series_basics () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 5.; 1.; 3.; 2.; 4. ];
  check_int "count" 5 (Stats.Series.count s);
  check_float "mean" 3. (Stats.Series.mean s);
  check_float "p0" 1. (Stats.Series.min s);
  check_float "p100" 5. (Stats.Series.max s);
  check_float "median" 3. (Stats.Series.percentile s 50.)

let test_series_percentile_interpolates () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 0.; 10. ];
  check_float "p25" 2.5 (Stats.Series.percentile s 25.)

let test_series_grows () =
  let s = Stats.Series.create () in
  for i = 1 to 5000 do
    Stats.Series.add s (float_of_int i)
  done;
  check_int "count" 5000 (Stats.Series.count s);
  check_float "max" 5000. (Stats.Series.max s)

let test_series_add_after_percentile () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 3.; 1. ];
  ignore (Stats.Series.percentile s 50.);
  Stats.Series.add s 2.;
  check_float "median updated" 2. (Stats.Series.percentile s 50.)

let test_meter_rate () =
  Engine.run (fun () ->
      let m = Stats.Meter.create () in
      Stats.Meter.mark_n m 100;
      Engine.sleep 1_000_000.;
      check_float "100/s" 100. (Stats.Meter.rate m);
      Stats.Meter.reset m;
      check_int "reset" 0 (Stats.Meter.count m))

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_series_percentile_edges () =
  let s = Stats.Series.create () in
  check_bool "empty percentile_opt" true (Stats.Series.percentile_opt s 50. = None);
  expect_invalid_arg "empty percentile" (fun () -> Stats.Series.percentile s 50.);
  Stats.Series.add s 7.;
  check_float "1-sample p0" 7. (Stats.Series.percentile s 0.);
  check_float "1-sample p50" 7. (Stats.Series.percentile s 50.);
  check_float "1-sample p100" 7. (Stats.Series.percentile s 100.);
  List.iter (Stats.Series.add s) [ 1.; 3. ];
  check_float "p0 is min" 1. (Stats.Series.percentile s 0.);
  check_float "p50 is median" 3. (Stats.Series.percentile s 50.);
  check_float "p100 is max" 7. (Stats.Series.percentile s 100.);
  expect_invalid_arg "p > 100" (fun () -> Stats.Series.percentile s 101.);
  expect_invalid_arg "p < 0" (fun () -> Stats.Series.percentile_opt s (-1.));
  expect_invalid_arg "p nan" (fun () -> Stats.Series.percentile s Float.nan)

let test_meter_zero_window () =
  Engine.run (fun () ->
      let m = Stats.Meter.create () in
      Stats.Meter.mark_n m 5;
      (* no virtual time has passed since create: rate must be 0, not
         a division blow-up *)
      check_float "zero-elapsed rate" 0. (Stats.Meter.rate m))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_get_or_create () =
  Engine.run (fun () ->
      let c1 = Metrics.counter ~host:"h" "ops" in
      let c2 = Metrics.counter ~host:"h" "ops" in
      Metrics.incr c1;
      Metrics.add c2 2;
      check_int "same underlying counter" 3 (Metrics.counter_value c1);
      (* a different host label is a different counter *)
      check_int "host-qualified distinct" 0 (Metrics.counter_value (Metrics.counter "ops"));
      let g = Metrics.gauge "depth" in
      Metrics.set_gauge g 4.;
      check_float "gauge readback" 4. (Metrics.gauge_value g);
      let h = Metrics.histogram ~host:"h" "lat_us" in
      Metrics.observe h 10.;
      Metrics.observe h 1_000.;
      check_int "hist count" 2 (Metrics.hist_count h);
      check_bool "p50 within observed range" true
        (Metrics.hist_percentile h 50. >= 10. && Metrics.hist_percentile h 50. <= 1_000.))

let test_metrics_reset_across_runs () =
  Engine.run (fun () -> Metrics.incr (Metrics.counter "a"));
  (* readable post-mortem: the registry survives the end of the run *)
  check_int "post-run readback" 1 (Metrics.counter_value (Metrics.counter "a"));
  Engine.run (fun () ->
      check_int "fresh registry in new run" 0 (Metrics.counter_value (Metrics.counter "a")))

let test_metrics_sampler_series () =
  Engine.run (fun () ->
      let r = Resource.create ~name:"dev" ~capacity:1 () in
      Metrics.track_resource r;
      Metrics.start_sampler ~interval_us:100. ();
      Engine.spawn (fun () ->
          for _ = 1 to 5 do
            Resource.use r 50.
          done);
      Engine.sleep 1_000.);
  let snap = Metrics.snapshot () in
  let find name =
    List.find_opt (fun (s : Metrics.series_view) -> String.equal s.Metrics.s_name name)
      snap.Metrics.series
  in
  (match find "util:dev" with
  | Some s ->
      check_bool "util points recorded" true (Array.length s.Metrics.s_points > 0);
      check_bool "busy interval sampled" true
        (Array.exists (fun (_, v) -> v > 0.) s.Metrics.s_points)
  | None -> Alcotest.fail "util:dev series missing");
  check_bool "qlen series present" true (find "qlen:dev" <> None)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let with_spans_on f =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let test_span_nesting () =
  with_spans_on (fun () ->
      Engine.run (fun () ->
          Span.with_span ~host:"h" "outer" (fun () ->
              Engine.sleep 10.;
              Span.with_span "inner" (fun () -> Engine.sleep 5.))));
  match Span.spans () with
  | [ outer; inner ] ->
      check_bool "inner's parent is outer" true (inner.Span.v_parent = Some outer.Span.v_id);
      check_bool "host inherited" true (inner.Span.v_host = Some "h");
      check_float "outer starts at 0" 0. outer.Span.v_start;
      check_float "inner starts after sleep" 10. inner.Span.v_start;
      check_bool "intervals nest" true
        (match (outer.Span.v_end, inner.Span.v_end) with
        | Some oe, Some ie -> ie <= oe && outer.Span.v_start <= inner.Span.v_start
        | _ -> false)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_span_cross_fiber_parent () =
  with_spans_on (fun () ->
      Engine.run (fun () ->
          Span.with_span ~host:"h" "root" (fun () ->
              let p = Span.current () in
              Engine.spawn (fun () ->
                  Span.with_parent p (fun () ->
                      Span.with_span "child" (fun () -> Engine.sleep 1.)));
              Engine.sleep 10.)));
  let spans = Span.spans () in
  let find n = List.find (fun (v : Span.view) -> String.equal v.Span.v_name n) spans in
  let root = find "root" in
  let child = find "child" in
  check_bool "cross-fiber parent" true (child.Span.v_parent = Some root.Span.v_id);
  check_bool "distinct fibers" true (child.Span.v_fiber <> root.Span.v_fiber);
  check_bool "host carried across fibers" true (child.Span.v_host = Some "h")

let test_span_disabled_records_nothing () =
  Engine.run (fun () -> Span.with_span ~host:"h" "ghost" (fun () -> Engine.sleep 1.));
  check_int "nothing recorded while off" 0 (List.length (Span.spans ()))

(* Two same-seed runs of an instrumented scenario must dump
   byte-identical span timelines and metric snapshots: observability
   never perturbs the schedule, and its own output is canonical. *)
let test_observability_determinism () =
  let scenario () =
    Span.capture (fun () ->
        Engine.run ~seed:11 (fun () ->
            let net = make_net ~jitter:0.1 () in
            let a = Net.add_host net "a" in
            let b = Net.add_host net "b" in
            let svc = Net.service b ~name:"echo" (fun x -> x * 2) in
            Metrics.start_sampler ~interval_us:500. ();
            let h = Metrics.histogram ~host:"a" "echo_us" in
            for i = 1 to 25 do
              Span.with_span ~host:"a" "op" (fun () ->
                  ignore (Metrics.time h (fun () -> Net.call ~from:a svc i)));
              Engine.sleep 50.
            done);
        Metrics.to_json ())
  in
  let m1, s1 = scenario () in
  let m2, s2 = scenario () in
  check_bool "spans non-trivial" true (String.length s1 > 100);
  Alcotest.(check string) "metrics byte-identical" m1 m2;
  Alcotest.(check string) "span dump byte-identical" s1 s2

(* ------------------------------------------------------------------ *)
(* Metrics strict mode: stale handles across engine resets            *)
(* ------------------------------------------------------------------ *)

let with_strict_metrics f =
  Metrics.set_strict true;
  Fun.protect ~finally:(fun () -> Metrics.set_strict false) f

(* A handle minted in one run silently writes into a fresh registry in
   the next run unless strict mode is on — then it raises, naming the
   metric, so tests catch accidentally cached handles. *)
let test_metrics_stale_handle_raises () =
  with_strict_metrics (fun () ->
      let stale = Engine.run (fun () -> Metrics.counter ~host:"n" "ops") in
      Engine.run (fun () ->
          (match Metrics.incr stale with
          | () -> Alcotest.fail "stale incr did not raise"
          | exception Metrics.Stale_handle label ->
              Alcotest.(check string) "label names the metric" "n.ops" label);
          (* a handle minted in this run keeps working *)
          let fresh = Metrics.counter ~host:"n" "ops" in
          Metrics.incr fresh;
          check_int "fresh handle counts" 1 (Metrics.counter_value fresh)))

let test_metrics_stale_handle_all_kinds () =
  with_strict_metrics (fun () ->
      let g, h = Engine.run (fun () -> (Metrics.gauge "depth", Metrics.histogram "lat_us")) in
      Engine.run (fun () ->
          check_bool "stale gauge raises" true
            (match Metrics.set_gauge g 1. with
            | () -> false
            | exception Metrics.Stale_handle _ -> true);
          check_bool "stale histogram raises" true
            (match Metrics.observe h 1. with
            | () -> false
            | exception Metrics.Stale_handle _ -> true)))

(* ------------------------------------------------------------------ *)
(* Timeseries                                                         *)
(* ------------------------------------------------------------------ *)

(* The correctness tests below drive [tick] by hand instead of the
   ticker fiber, pinning window boundaries exactly. With [subticks = 1]
   the very first tick opens and seals a degenerate zero-length window
   0; real windows start at 1. *)
let test_timeseries_counter_rate () =
  Engine.run (fun () ->
      Timeseries.configure ~window_us:1_000. ~subticks:1 ();
      let c = Metrics.counter ~host:"n" "ops" in
      Timeseries.track_counter c;
      Timeseries.tick ();
      (* 10 increments in window 1, none in window 2 *)
      for _ = 1 to 10 do
        Metrics.incr c
      done;
      Engine.sleep 1_000.;
      Timeseries.tick ();
      Engine.sleep 1_000.;
      Timeseries.tick ();
      check_int "three windows sealed" 3 (Timeseries.windows ());
      match Timeseries.find ~series:"counter:n.ops" ~col:"rate" with
      | None -> Alcotest.fail "counter series missing"
      | Some sel ->
          check_float "degenerate window 0 rate" 0. (Timeseries.window_value sel 0);
          check_float "window 1 rate: 10 ops / 1ms" 10_000. (Timeseries.window_value sel 1);
          check_float "window 2 rate" 0. (Timeseries.window_value sel 2);
          check_float "last = window 2" 0. (Timeseries.last sel))

let test_timeseries_gauge_minmax_and_probe () =
  Engine.run (fun () ->
      Timeseries.configure ~window_us:1_000. ~subticks:4 ();
      let g = Metrics.gauge ~host:"n" "depth" in
      Timeseries.track_gauge g;
      Timeseries.probe ~host:"n" "lag" (fun () -> Engine.now ());
      (* four sub-samples at 250µs cadence seal one window *)
      List.iter
        (fun v ->
          Metrics.set_gauge g v;
          Timeseries.tick ();
          Engine.sleep 250.)
        [ 5.; 2.; 9.; 4. ];
      check_int "one window sealed" 1 (Timeseries.windows ());
      let value col series =
        match Timeseries.find ~series ~col with
        | Some sel -> Timeseries.window_value sel 0
        | None -> Alcotest.fail ("missing " ^ series)
      in
      check_float "gauge min" 2. (value "min" "gauge:n.depth");
      check_float "gauge max" 9. (value "max" "gauge:n.depth");
      check_float "gauge last" 4. (value "last" "gauge:n.depth");
      (* the probe sampled the clock at each sub-tick *)
      check_float "probe min is the first sub-tick" 0. (value "min" "probe:n.lag");
      check_float "probe max is the last sub-tick" 750. (value "max" "probe:n.lag");
      check_float "probe last" 750. (value "last" "probe:n.lag"))

let test_timeseries_hist_window_percentiles () =
  Engine.run (fun () ->
      Timeseries.configure ~window_us:1_000. ~subticks:1 ();
      let h = Metrics.histogram ~host:"n" "lat_us" in
      (* observations before tracking belong to no window *)
      Metrics.observe h 10_000.;
      Timeseries.track_histogram h;
      Timeseries.tick ();
      for _ = 1 to 100 do
        Metrics.observe h 100.
      done;
      Engine.sleep 1_000.;
      Timeseries.tick ();
      Metrics.observe h 500.;
      Engine.sleep 1_000.;
      Timeseries.tick ();
      let v col j =
        match Timeseries.find ~series:"hist:n.lat_us" ~col with
        | Some sel -> Timeseries.window_value sel j
        | None -> Alcotest.fail "hist series missing"
      in
      check_float "pre-track observation excluded" 0. (v "count" 0);
      check_float "window 1 count" 100. (v "count" 1);
      check_bool "window 1 p99 near 100us" true (v "p99" 1 >= 80. && v "p99" 1 <= 130.);
      check_float "window 2 count" 1. (v "count" 2);
      check_bool "window 2 p50 near 500us, unpolluted by window 1" true
        (v "p50" 2 >= 400. && v "p50" 2 <= 650.))

let test_timeseries_ring_eviction () =
  Engine.run (fun () ->
      Timeseries.configure ~window_us:100. ~subticks:1 ~slots:4 ();
      Timeseries.probe "const" (fun () -> 7.);
      Timeseries.tick ();
      for _ = 1 to 10 do
        Engine.sleep 100.;
        Timeseries.tick ()
      done;
      check_int "11 windows sealed" 11 (Timeseries.windows ());
      match Timeseries.find ~series:"probe:const" ~col:"last" with
      | None -> Alcotest.fail "probe series missing"
      | Some sel ->
          check_bool "window 6 evicted" true (Float.is_nan (Timeseries.window_value sel 6));
          check_float "window 7 retained" 7. (Timeseries.window_value sel 7);
          check_float "window 10 retained" 7. (Timeseries.window_value sel 10);
          check_bool "start of evicted window is nan" true (Float.is_nan (Timeseries.window_start 6));
          check_float "start of window 7" 600. (Timeseries.window_start 7))

let test_timeseries_deterministic_dump () =
  let scenario () =
    Engine.run ~seed:7 (fun () ->
        let net = make_net ~jitter:0.2 () in
        let a = Net.add_host net "a" in
        let b = Net.add_host net "b" in
        let svc = Net.service b ~name:"echo" (fun x -> x) in
        let h = Metrics.histogram ~host:"a" "echo_us" in
        Timeseries.configure ~window_us:500. ~subticks:5 ();
        Timeseries.start ();
        for i = 1 to 40 do
          ignore (Metrics.time h (fun () -> Net.call ~from:a svc i));
          Engine.sleep 50.
        done);
    Timeseries.to_json ()
  in
  let d1 = scenario () in
  let d2 = scenario () in
  check_bool "dump non-trivial" true (String.length d1 > 200);
  Alcotest.(check string) "timeseries dump byte-identical" d1 d2

(* ------------------------------------------------------------------ *)
(* SLO burn-rate monitors                                             *)
(* ------------------------------------------------------------------ *)

(* objective 0.5 -> budget 0.5; fast=2 slow=4 burn=1.5: fires when
   bad fraction >= 0.75 in both horizons. *)
let test_slo_fire_and_resolve () =
  Engine.run (fun () ->
      let m =
        Slo.monitor ~name:"lat" ~series:"none" ~col:"last" ~threshold:100. ~objective:0.5
          ~fast_windows:2 ~slow_windows:4 ~burn:1.5 ()
      in
      List.iter (fun v -> Slo.feed m v) [ 50.; 200. ];
      check_bool "one bad of two: not firing" false (Slo.firing m);
      List.iter (fun v -> Slo.feed m v) [ 200.; 200. ];
      (* window: [50 200 200 200] bad=3/4=0.75 slow burn 1.5; fast [200 200] = 2.0 *)
      check_bool "sustained badness fires" true (Slo.firing m);
      List.iter (fun v -> Slo.feed m v) [ 50.; 50. ];
      check_bool "recovery resolves" false (Slo.firing m);
      match Slo.alerts () with
      | [ fired; resolved ] ->
          check_bool "first is a fire" true fired.Slo.al_firing;
          check_bool "second is a resolve" false resolved.Slo.al_firing;
          Alcotest.(check string) "monitor named" "lat" fired.Slo.al_monitor;
          check_float "firing value" 200. fired.Slo.al_value
      | l -> Alcotest.fail (Printf.sprintf "expected 2 transitions, got %d" (List.length l)))

let test_slo_nan_windows_are_good () =
  Engine.run (fun () ->
      let m =
        Slo.monitor ~name:"lat" ~series:"none" ~col:"last" ~threshold:100. ~objective:0.5
          ~fast_windows:2 ~slow_windows:2 ~burn:1. ()
      in
      List.iter (fun v -> Slo.feed m v) [ Float.nan; Float.nan; Float.nan; Float.nan ];
      check_bool "nan never fires" false (Slo.firing m))

let test_slo_below_kind () =
  Engine.run (fun () ->
      (* an availability-style monitor: bad when the value drops *)
      let m =
        Slo.monitor ~name:"tput" ~series:"none" ~col:"rate" ~kind:`Below ~threshold:10.
          ~objective:0.5 ~fast_windows:2 ~slow_windows:2 ~burn:1. ()
      in
      List.iter (fun v -> Slo.feed m v) [ 50.; 3.; 2. ];
      check_bool "sustained undershoot fires" true (Slo.firing m))

let test_slo_evaluates_from_timeseries () =
  Engine.run (fun () ->
      Timeseries.configure ~window_us:1_000. ~subticks:1 ();
      let flag = ref 0. in
      Timeseries.probe "err" (fun () -> !flag);
      Timeseries.start ~track_metrics:false ();
      let m =
        Slo.monitor ~name:"err" ~series:"probe:err" ~col:"last" ~threshold:0.5 ~objective:0.5
          ~fast_windows:1 ~slow_windows:2 ~burn:1. ()
      in
      Engine.sleep 2_000.;
      check_bool "quiet: not firing" false (Slo.firing m);
      flag := 1.;
      Engine.sleep 2_000.;
      check_bool "raised flag fires via window close" true (Slo.firing m);
      match Slo.alerts () with
      | a :: _ ->
          (* stamped at the end of the causing window, a multiple of
             the window length — never the evaluation instant *)
          check_float "alert time is a window boundary" 0.
            (Float.rem a.Slo.al_time (Timeseries.window_us ()))
      | [] -> Alcotest.fail "no alert recorded")

let test_slo_alerts_json_deterministic () =
  let scenario () =
    Engine.run ~seed:5 (fun () ->
        let m =
          Slo.monitor ~name:"m" ~series:"none" ~col:"last" ~threshold:1. ~objective:0.8
            ~fast_windows:2 ~slow_windows:3 ~burn:1. ()
        in
        List.iter (fun v -> Slo.feed m v) [ 0.; 2.; 2.; 2.; 0.; 0.; 2.; 2. ]);
    Slo.alerts_json ()
  in
  let a1 = scenario () in
  let a2 = scenario () in
  check_bool "alert stream non-trivial" true (String.length a1 > 10);
  Alcotest.(check string) "alerts byte-identical" a1 a2

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let str_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let with_flight_on f =
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.configure ~cap:256 ~snapshots:16 ())
    f

let test_flight_disabled_is_noop () =
  Engine.run (fun () ->
      Flight.record ~host:"n" Flight.Note ~name:"x" ~value:1.;
      Flight.snapshot ~reason:"r";
      check_int "nothing recorded" 0 (Flight.events_recorded ());
      check_int "no snapshot" 0 (Flight.snapshot_count ()))

let test_flight_ring_overwrites_oldest () =
  with_flight_on (fun () ->
      Flight.configure ~cap:4 ();
      Engine.run (fun () ->
          for i = 1 to 10 do
            Flight.record ~host:"n" Flight.Note ~name:"e" ~value:(float_of_int i)
          done;
          check_int "all recorded" 10 (Flight.events_recorded ());
          Flight.snapshot ~reason:"test";
          match Flight.snapshots () with
          | [ s ] ->
              (* only the last 4 events survive, oldest first *)
              check_bool "ring keeps the tail" true
                (let j = s.Flight.sn_json in
                 let has v = str_contains j (Printf.sprintf "\"value\":%d" v) in
                 has 7 && has 10 && not (has 6))
          | l -> Alcotest.fail (Printf.sprintf "expected 1 snapshot, got %d" (List.length l))))

let test_flight_snapshot_budget () =
  with_flight_on (fun () ->
      Flight.configure ~snapshots:2 ();
      Engine.run (fun () ->
          Flight.note ~host:"n" "x";
          for i = 1 to 5 do
            Flight.snapshot ~reason:(Printf.sprintf "s%d" i)
          done;
          check_int "budget caps snapshots" 2 (Flight.snapshot_count ())))

let test_flight_span_and_metric_capture () =
  with_flight_on (fun () ->
      Span.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Span.set_enabled false)
        (fun () ->
          Engine.run (fun () ->
              let c = Metrics.counter ~host:"n" "ops" in
              Metrics.incr c;
              Span.with_span ~host:"n" "op" (fun () -> Engine.sleep 5.);
              check_bool "metric and span close recorded" true (Flight.events_recorded () >= 2);
              Flight.snapshot ~reason:"probe";
              match Flight.snapshots () with
              | [ s ] ->
                  check_bool "span event in dump" true (str_contains s.Flight.sn_json "\"kind\":\"span\"");
                  check_bool "metric event in dump" true
                    (str_contains s.Flight.sn_json "\"kind\":\"metric\"");
                  check_bool "chrome trace has instants" true
                    (str_contains s.Flight.sn_trace "\"ph\":\"i\"")
              | _ -> Alcotest.fail "expected exactly 1 snapshot")))

let test_flight_deterministic_dump () =
  let scenario () =
    with_flight_on (fun () ->
        Engine.run ~seed:13 (fun () ->
            let net = make_net ~jitter:0.3 () in
            let a = Net.add_host net "a" in
            let b = Net.add_host net "b" in
            let svc = Net.service b ~name:"echo" (fun x -> x) in
            let c = Metrics.counter ~host:"a" "ops" in
            for i = 1 to 30 do
              ignore (Net.call ~from:a svc i);
              Metrics.incr c
            done;
            Flight.snapshot ~reason:"end");
        Flight.dump_json ())
  in
  let d1 = scenario () in
  let d2 = scenario () in
  check_bool "dump non-trivial" true (String.length d1 > 100);
  Alcotest.(check string) "flight dump byte-identical" d1 d2

(* ------------------------------------------------------------------ *)
(* Rng properties                                                     *)
(* ------------------------------------------------------------------ *)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"rng float stays in bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0. && v < bound)

let prop_rng_deterministic =
  QCheck.Test.make ~name:"equal seeds, equal streams" ~count:100 QCheck.small_int (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      List.init 20 (fun _ -> Rng.int64 a) = List.init 20 (fun _ -> Rng.int64 b))

let prop_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_resource_conserves =
  QCheck.Test.make ~name:"resource never exceeds capacity" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (capacity, fibers) ->
      Engine.run (fun () ->
          let r = Resource.create ~name:"r" ~capacity () in
          let active = ref 0 in
          let max_active = ref 0 in
          let ok = ref true in
          for _ = 1 to fibers do
            Engine.spawn (fun () ->
                Resource.acquire r;
                incr active;
                if !active > !max_active then max_active := !active;
                if !active > capacity then ok := false;
                Engine.sleep 5.;
                decr active;
                Resource.release r)
          done;
          Engine.sleep 1_000.;
          !ok && !max_active <= capacity))

(* ------------------------------------------------------------------ *)
(* Fault plans as data                                                *)
(* ------------------------------------------------------------------ *)

let sample_plan : (float * Fault.action) list =
  [
    (100., Fault.Crash "storage-0");
    (150.5, Fault.Degrade { d_src = "app"; d_dst = "*"; d_drop = 0.25; d_delay_us = 120.; d_jitter_us = 30.125 });
    (200., Fault.Partition [ [ "storage-1"; "storage-2" ]; [ "app" ] ]);
    (300., Fault.Heal);
    (301., Fault.Clear_edge ("app", "*"));
    (400.75, Fault.Custom ("replace-sequencer", fun () -> ()));
    (500., Fault.Restart "storage-0");
  ]

let test_fault_plan_equal_pp () =
  check_bool "plan equals itself" true (Fault.equal_plan sample_plan sample_plan);
  check_bool "custom compares by name" true
    (Fault.equal_action
       (Fault.Custom ("x", fun () -> ()))
       (Fault.Custom ("x", fun () -> failwith "different closure")));
  check_bool "different custom names differ" false
    (Fault.equal_action (Fault.Custom ("x", fun () -> ())) (Fault.Custom ("y", fun () -> ())));
  check_bool "prefix is not the plan" false
    (Fault.equal_plan sample_plan (List.tl sample_plan));
  let rendered = Format.asprintf "%a" Fault.pp_plan sample_plan in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i = i + nl <= hl && (String.equal (String.sub rendered i nl) needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool (Printf.sprintf "pp mentions %s" needle) true (contains needle))
    [ "crash storage-0"; "partition"; "heal"; "replace-sequencer"; "clear-edge" ]

let test_fault_plan_round_trip () =
  let doc = Fault.encode_plan sample_plan in
  let back = Fault.decode_plan doc in
  check_bool "encode/decode round-trips" true (Fault.equal_plan sample_plan back);
  check_bool "re-encode is byte-identical" true (String.equal doc (Fault.encode_plan back));
  (* decoded customs get placeholder thunks that refuse to run *)
  (match List.nth back 5 with
  | _, Fault.Custom (_, thunk) -> (
      match thunk () with
      | () -> Alcotest.fail "placeholder thunk ran"
      | exception Invalid_argument _ -> ())
  | _ -> Alcotest.fail "expected a custom action");
  (* a custom resolver rebinds thunks by name *)
  let hit = ref "" in
  let back = Fault.decode_plan ~custom:(fun name () -> hit := name) doc in
  (match List.nth back 5 with
  | _, Fault.Custom (_, thunk) -> thunk ()
  | _ -> Alcotest.fail "expected a custom action");
  Alcotest.(check string) "thunk rebound by name" "replace-sequencer" !hit;
  match Fault.decode_plan "{\"version\":99,\"events\":[]}" with
  | _ -> Alcotest.fail "unknown version accepted"
  | exception Invalid_argument _ -> ()

(* Random action generator for the serialization property. Hosts and
   numbers are arbitrary — the codec must not care. *)
let finite_float =
  QCheck.Gen.(map (fun f -> Float.of_int f /. 64.) (int_range (-1_000_000) 1_000_000))

let action_gen =
  let open QCheck.Gen in
  let host = oneofl [ "storage-0"; "storage-1"; "app-1"; "seq"; "*" ] in
  oneof
    [
      map (fun h -> Fault.Crash h) host;
      map (fun h -> Fault.Restart h) host;
      map (fun cs -> Fault.Partition cs) (list_size (int_range 0 3) (list_size (int_range 0 3) host));
      return Fault.Heal;
      map3
        (fun (s, d) drop (delay, jitter) ->
          Fault.Degrade { d_src = s; d_dst = d; d_drop = drop; d_delay_us = delay; d_jitter_us = jitter })
        (pair host host) (float_bound_inclusive 1.) (pair finite_float finite_float);
      map (fun (s, d) -> Fault.Clear_edge (s, d)) (pair host host);
      map (fun n -> Fault.Custom ("op-" ^ string_of_int n, fun () -> ())) small_nat;
    ]

let plan_gen =
  QCheck.Gen.(list_size (int_range 0 12) (pair (map Float.abs finite_float) action_gen))
  |> QCheck.make ~print:(fun p -> Format.asprintf "%a" Fault.pp_plan p)

let prop_fault_plan_round_trip =
  QCheck.Test.make ~name:"fault plan encode/decode round-trips" ~count:300 plan_gen (fun p ->
      Fault.equal_plan p (Fault.decode_plan (Fault.encode_plan p)))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Eventq                                                             *)
(* ------------------------------------------------------------------ *)

(* Top-level so pushing it allocates nothing (statically allocated). *)
let eventq_nothing () = ()

let test_eventq_heap_order () =
  (* Heap-only pushes in random order must pop in (time, seq) order,
     matching a reference sort. *)
  let rng = Random.State.make [| 7 |] in
  let n = 500 in
  let entries =
    Array.init n (fun seq -> (float_of_int (Random.State.int rng 40) /. 4., seq))
  in
  let q = Eventq.create ~capacity:16 () in
  let popped = ref [] in
  Array.iter
    (fun (t, s) -> Eventq.push q t s (fun () -> popped := (t, s) :: !popped))
    entries;
  check_int "size" n (Eventq.size q);
  while not (Eventq.is_empty q) do
    (Eventq.pop q) ()
  done;
  let got = List.rev !popped in
  let want =
    Array.to_list entries
    |> List.sort (fun (t1, s1) (t2, s2) ->
           match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
  in
  Alcotest.(check (list (pair (float 0.) int))) "heap pops sorted" want got

let test_eventq_lane_interleave () =
  (* Mimic the engine's discipline: lane pushes always carry the
     current clock (the time of the last dispatched event), heap pushes
     an arbitrary later time, seqs from one monotonic counter. Dispatch
     order must still be globally sorted by (time, seq). *)
  let rng = Random.State.make [| 23 |] in
  let q = Eventq.create ~capacity:16 () in
  let clock = ref 0. in
  let seq = ref 0 in
  let dispatched = ref [] in
  let pushes = ref 0 in
  let push_one () =
    let s = !seq in
    incr seq;
    incr pushes;
    if Random.State.bool rng then
      Eventq.push_now q !clock s (fun () -> dispatched := (!clock, s) :: !dispatched)
    else
      let t = !clock +. (float_of_int (Random.State.int rng 8) /. 2.) in
      Eventq.push q t s (fun () -> dispatched := (t, s) :: !dispatched)
  in
  for _ = 1 to 20 do
    push_one ()
  done;
  while not (Eventq.is_empty q) do
    let t = Eventq.next_time q in
    Alcotest.(check bool) "clock monotone" true (t >= !clock);
    clock := t;
    (Eventq.pop q) ();
    (* Keep churn going while draining, like resume storms do. *)
    if !pushes < 400 && Random.State.int rng 3 > 0 then push_one ()
  done;
  let got = List.rev !dispatched in
  check_int "all dispatched" !pushes (List.length got);
  let sorted =
    List.sort (fun (t1, s1) (t2, s2) -> match compare t1 t2 with 0 -> compare s1 s2 | c -> c) got
  in
  Alcotest.(check (list (pair (float 0.) int))) "globally sorted" sorted got

let test_eventq_zero_alloc_drain () =
  (* The dispatch side must not allocate: draining a prefilled queue
     costs exactly as many minor words as an empty measured region
     (the measurement's own boxed floats). *)
  let alloc_delta f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let q = Eventq.create ~capacity:4096 () in
  for s = 0 to 2047 do
    Eventq.push q (float_of_int (s land 31)) s eventq_nothing
  done;
  for s = 2048 to 2099 do
    Eventq.push_now q 31. s eventq_nothing
  done;
  let control = alloc_delta (fun () -> ()) in
  let drain =
    alloc_delta (fun () ->
        while not (Eventq.is_empty q) do
          (Eventq.pop q) ()
        done)
  in
  check_bool "queue drained" true (Eventq.is_empty q);
  check_float "drain allocates nothing" control drain

let test_eventq_growth () =
  (* Push far past the initial capacity (heap and lane both grow, the
     lane while wrapped) and check nothing is lost or reordered. *)
  let q = Eventq.create ~capacity:16 () in
  let hits = ref 0 in
  (* Wrap the lane ring: push/pop a few to advance lhead first. *)
  for s = 0 to 9 do
    Eventq.push_now q 0. s (fun () -> incr hits)
  done;
  for _ = 0 to 9 do
    (Eventq.pop q) ()
  done;
  for s = 10 to 200 do
    Eventq.push_now q 0. s (fun () -> incr hits)
  done;
  for s = 201 to 400 do
    Eventq.push q 1. s (fun () -> incr hits)
  done;
  let last_t = ref (-1.) in
  while not (Eventq.is_empty q) do
    let t = Eventq.next_time q in
    check_bool "nondecreasing" true (t >= !last_t);
    last_t := t;
    (Eventq.pop q) ()
  done;
  check_int "all events ran" 401 !hits

let test_eventq_band_ordering () =
  (* Times spanning all four bands — lane (push_now), near heap, the
     256-bucket wheel window and the far heap beyond it — must still
     dispatch in global (time, seq) order. wheel granularity is 64 µs ×
     256 slots, so the wheel window ends at 16384 µs from the floor:
     [0, 60000) crosses it several times over as the floor advances. *)
  let rng = Random.State.make [| 41 |] in
  let q = Eventq.create ~capacity:16 () in
  let n = 800 in
  let entries =
    Array.init n (fun seq -> (float_of_int (Random.State.int rng 600) *. 100., seq))
  in
  Array.iter
    (fun (t, s) -> Eventq.push q t s (fun () -> ()))
    entries;
  check_int "size" n (Eventq.size q);
  let got = ref [] in
  let clock = ref 0. in
  let seq = ref n in
  let extra = ref 0 in
  while not (Eventq.is_empty q) do
    let t = Eventq.next_time q in
    check_bool "clock monotone across bands" true (t >= !clock);
    clock := t;
    (Eventq.pop q) ();
    got := t :: !got;
    (* Lane churn while draining: same-time work must not leapfrog. *)
    if !extra < 200 && Random.State.int rng 4 = 0 then begin
      incr extra;
      Eventq.push_now q !clock !seq (fun () -> ());
      incr seq
    end
  done;
  check_int "all dispatched" (n + !extra) (List.length !got)

let test_eventq_far_band_growth () =
  (* Everything lands beyond the wheel window (>= 16384 µs) in a
     capacity-4 queue: the far heap must grow and refill must chase the
     minimum across wheel jumps without losing or reordering events. *)
  let rng = Random.State.make [| 43 |] in
  let q = Eventq.create ~capacity:4 () in
  let n = 300 in
  for s = 0 to n - 1 do
    Eventq.push q (20_000. +. float_of_int (Random.State.int rng 1_000_000)) s (fun () -> ())
  done;
  let last = ref neg_infinity in
  let popped = ref 0 in
  while not (Eventq.is_empty q) do
    let t = Eventq.next_time q in
    check_bool "far band sorted" true (t >= !last);
    last := t;
    (Eventq.pop q) ();
    incr popped
  done;
  check_int "far band complete" n !popped

(* ------------------------------------------------------------------ *)
(* Sharded engine                                                      *)
(* ------------------------------------------------------------------ *)

let test_spawn_past_raises () =
  Sim.Engine.run (fun () ->
      Sim.Engine.sleep 100.;
      Alcotest.check_raises "past ~at rejected"
        (Invalid_argument "Sim.Engine.spawn: ~at is in the past") (fun () ->
          Sim.Engine.spawn ~at:50. (fun () -> ()));
      (* The boundary case — exactly now — is fine. *)
      Sim.Engine.spawn ~at:100. (fun () -> ()))

(* A small cross-shard workload whose shard-0 trace digests the merge
   order: shard 1 sleeps exponential gaps and posts (arrival time, i,
   rng draw) home; shard 0 records them. Any nondeterminism in window
   sizing, merge order or RNG streams changes the digest. *)
let sharded_trace ~seed ~shards ~lookahead =
  let trace = Buffer.create 256 in
  let remaining = ref (20 * max 1 (shards - 1)) in
  let waiter = ref None in
  let record i v =
    Buffer.add_string trace
      (Printf.sprintf "%.17g %d %d;" (Sim.Engine.now ()) i v);
    decr remaining;
    if !remaining = 0 then match !waiter with Some k -> k () | None -> ()
  in
  let sender ~shard =
    Sim.Engine.spawn (fun () ->
        let rng = Sim.Engine.rng () in
        for i = 1 to 20 do
          Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:50.);
          let v = Sim.Rng.int rng 1000 in
          let tag = (shard * 100) + i in
          Sim.Engine.post ~shard:0 (fun () -> record tag v)
        done)
  in
  let main () =
    if !remaining > 0 then Sim.Engine.suspend (fun k -> waiter := Some k);
    Buffer.contents trace
  in
  if shards = 1 then begin
    remaining := 20;
    Sim.Engine.run_sharded ~seed ~shards:1 ~lookahead (fun () ->
        sender ~shard:0;
        main ())
  end
  else
    Sim.Engine.run_sharded ~seed ~shards ~lookahead
      ~init:(fun ~shard -> sender ~shard)
      main

let test_sharded_single_matches_plain () =
  (* shards = 1 must be byte-identical to the plain engine. *)
  let plain =
    let trace = Buffer.create 256 in
    Sim.Engine.run ~seed:5 (fun () ->
        let rng = Sim.Engine.rng () in
        for i = 1 to 20 do
          Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:50.);
          let v = Sim.Rng.int rng 1000 in
          Sim.Engine.schedule ~after:0. (fun () ->
              Buffer.add_string trace
                (Printf.sprintf "%.17g %d %d;" (Sim.Engine.now ()) i v))
        done;
        Sim.Engine.sleep 10_000.;
        Buffer.contents trace)
  in
  let sharded =
    let trace = Buffer.create 256 in
    Sim.Engine.run_sharded ~seed:5 ~shards:1 ~lookahead:0. (fun () ->
        let rng = Sim.Engine.rng () in
        for i = 1 to 20 do
          Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:50.);
          let v = Sim.Rng.int rng 1000 in
          Sim.Engine.post ~shard:0 ~after:0. (fun () ->
              Buffer.add_string trace
                (Printf.sprintf "%.17g %d %d;" (Sim.Engine.now ()) i v))
        done;
        Sim.Engine.sleep 10_000.;
        Buffer.contents trace)
  in
  Alcotest.(check string) "single-shard trace identical" plain sharded

let test_sharded_deterministic () =
  (* Two same-seed multi-domain runs must produce identical traces,
     independent of OS scheduling of the worker domains. *)
  let a = sharded_trace ~seed:11 ~shards:3 ~lookahead:10. in
  let b = sharded_trace ~seed:11 ~shards:3 ~lookahead:10. in
  check_bool "trace nonempty" true (String.length a > 0);
  Alcotest.(check string) "same-seed runs identical" a b;
  let c = sharded_trace ~seed:12 ~shards:3 ~lookahead:10. in
  check_bool "different seed diverges" true (not (String.equal a c))

let test_sharded_post_below_lookahead_raises () =
  Alcotest.check_raises "below-lookahead cross-shard post rejected"
    (Invalid_argument "Sim.Engine.post: cross-shard delay below the lookahead window")
    (fun () ->
      Sim.Engine.run_sharded ~shards:2 ~lookahead:10. (fun () ->
          Sim.Engine.post ~shard:1 ~after:5. (fun () -> ())))

let test_sharded_unknown_shard_raises () =
  Alcotest.check_raises "unknown shard rejected"
    (Invalid_argument "Sim.Engine.post: no such shard") (fun () ->
      Sim.Engine.run_sharded ~shards:2 ~lookahead:10. (fun () ->
          Sim.Engine.post ~shard:2 (fun () -> ())))

let test_sharded_deadlock () =
  (* Main suspends forever; every shard drains. The coordinator must
     detect the global deadlock instead of spinning on empty windows. *)
  Alcotest.check_raises "sharded deadlock detected" Sim.Engine.Deadlock (fun () ->
      ignore
        (Sim.Engine.run_sharded ~shards:2 ~lookahead:10. (fun () ->
             Sim.Engine.suspend (fun (_ : unit Sim.Engine.resumer) -> ()))))

let test_sharded_horizon () =
  Alcotest.check_raises "sharded horizon enforced" (Sim.Engine.Horizon_reached 100.) (fun () ->
      ignore
        (Sim.Engine.run_sharded ~shards:2 ~lookahead:10. ~until:100. (fun () ->
             let rec loop () =
               Sim.Engine.sleep 30.;
               loop ()
             in
             loop ())))

let test_sharded_stats_populated () =
  let (_ : string) = sharded_trace ~seed:7 ~shards:2 ~lookahead:10. in
  let stats = Sim.Engine.last_shard_stats () in
  check_int "one stat per shard" 2 (Array.length stats);
  check_bool "windows ran" true (Sim.Engine.last_windows () > 0);
  check_bool "shard 0 dispatched events" true (stats.(0).Sim.Engine.sh_events > 0);
  check_bool "shard 1 sent messages" true (stats.(1).Sim.Engine.sh_msgs_out >= 20);
  check_int "deliveries match sends"
    (stats.(0).Sim.Engine.sh_msgs_out + stats.(1).Sim.Engine.sh_msgs_out)
    (stats.(0).Sim.Engine.sh_msgs_in + stats.(1).Sim.Engine.sh_msgs_in)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "run returns result" `Quick test_run_returns_result;
          Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
          Alcotest.test_case "negative sleep clamped" `Quick test_negative_sleep_clamped;
          Alcotest.test_case "spawn runs concurrently" `Quick test_spawn_runs_concurrently;
          Alcotest.test_case "same-time events are FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "main completion stops world" `Quick test_main_completion_stops_world;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "horizon enforced" `Quick test_horizon;
          Alcotest.test_case "fiber exception propagates" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "fiber ids unique" `Quick test_fiber_ids_unique;
          Alcotest.test_case "schedule thunk" `Quick test_schedule_thunk;
          Alcotest.test_case "deterministic replay" `Quick test_determinism;
        ] );
      ( "eventq",
        [
          Alcotest.test_case "heap pops in (time, seq) order" `Quick test_eventq_heap_order;
          Alcotest.test_case "lane/heap interleave stays sorted" `Quick
            test_eventq_lane_interleave;
          Alcotest.test_case "drain allocates zero minor words" `Quick
            test_eventq_zero_alloc_drain;
          Alcotest.test_case "growth preserves events" `Quick test_eventq_growth;
          Alcotest.test_case "band ordering across wheel/far" `Quick test_eventq_band_ordering;
          Alcotest.test_case "far band growth" `Quick test_eventq_far_band_growth;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "spawn ~at past raises" `Quick test_spawn_past_raises;
          Alcotest.test_case "single shard matches plain run" `Quick
            test_sharded_single_matches_plain;
          Alcotest.test_case "multi-domain runs deterministic" `Quick test_sharded_deterministic;
          Alcotest.test_case "post below lookahead raises" `Quick
            test_sharded_post_below_lookahead_raises;
          Alcotest.test_case "post to unknown shard raises" `Quick
            test_sharded_unknown_shard_raises;
          Alcotest.test_case "deadlock detected across shards" `Quick test_sharded_deadlock;
          Alcotest.test_case "horizon enforced across shards" `Quick test_sharded_horizon;
          Alcotest.test_case "shard stats populated" `Quick test_sharded_stats_populated;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks until fill" `Quick test_ivar_blocks_until_filled;
          Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill_rejected;
          Alcotest.test_case "peek and is_filled" `Quick test_ivar_peek;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo order" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "waiters served fifo" `Quick test_mailbox_waiters_fifo;
          Alcotest.test_case "try_recv and length" `Quick test_mailbox_try_recv;
        ] );
      ( "resource",
        [
          Alcotest.test_case "capacity 1 serializes" `Quick test_resource_serializes;
          Alcotest.test_case "capacity 2 parallel" `Quick test_resource_parallel_capacity;
          Alcotest.test_case "fifo queue" `Quick test_resource_fifo_queue;
          Alcotest.test_case "throughput cap" `Quick test_resource_throughput_cap;
          Alcotest.test_case "release without acquire" `Quick test_resource_release_without_acquire;
          Alcotest.test_case "busy time accounting" `Quick test_resource_busy_time;
        ] );
      ( "net",
        [
          Alcotest.test_case "rpc roundtrip" `Quick test_net_rpc_roundtrip;
          Alcotest.test_case "loopback free" `Quick test_net_loopback_is_free;
          Alcotest.test_case "bandwidth charged" `Quick test_net_bandwidth_charged;
          Alcotest.test_case "server saturation" `Quick test_net_server_saturation;
          Alcotest.test_case "async send" `Quick test_net_send_is_async;
        ] );
      ( "fault",
        [
          Alcotest.test_case "judge crash and partition" `Quick
            test_fault_judge_crash_and_partition;
          Alcotest.test_case "edge delay observed" `Quick test_fault_edge_delay_observed;
          Alcotest.test_case "resource fail and repair" `Quick test_fault_resource_fail_repair;
          Alcotest.test_case "call_r timeout and dead paths" `Quick test_fault_call_r_paths;
          Alcotest.test_case "plan runs in virtual time" `Quick
            test_fault_schedule_is_virtual_time;
          Alcotest.test_case "trace deterministic across runs" `Quick
            test_fault_trace_deterministic;
          Alcotest.test_case "plan equality and printing" `Quick test_fault_plan_equal_pp;
          Alcotest.test_case "plan serialization round-trip" `Quick test_fault_plan_round_trip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "series basics" `Quick test_series_basics;
          Alcotest.test_case "percentile interpolates" `Quick test_series_percentile_interpolates;
          Alcotest.test_case "series grows" `Quick test_series_grows;
          Alcotest.test_case "add after percentile" `Quick test_series_add_after_percentile;
          Alcotest.test_case "meter rate" `Quick test_meter_rate;
          Alcotest.test_case "percentile edge cases" `Quick test_series_percentile_edges;
          Alcotest.test_case "meter zero window" `Quick test_meter_zero_window;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "get-or-create handles" `Quick test_metrics_get_or_create;
          Alcotest.test_case "reset across runs" `Quick test_metrics_reset_across_runs;
          Alcotest.test_case "sampler records series" `Quick test_metrics_sampler_series;
          Alcotest.test_case "strict mode: stale handle raises" `Quick test_metrics_stale_handle_raises;
          Alcotest.test_case "strict mode: all handle kinds" `Quick test_metrics_stale_handle_all_kinds;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "counter rate per window" `Quick test_timeseries_counter_rate;
          Alcotest.test_case "gauge min/max/last and probes" `Quick test_timeseries_gauge_minmax_and_probe;
          Alcotest.test_case "histogram window percentiles" `Quick test_timeseries_hist_window_percentiles;
          Alcotest.test_case "ring eviction" `Quick test_timeseries_ring_eviction;
          Alcotest.test_case "deterministic dumps" `Quick test_timeseries_deterministic_dump;
        ] );
      ( "slo",
        [
          Alcotest.test_case "fire and resolve" `Quick test_slo_fire_and_resolve;
          Alcotest.test_case "nan windows are good" `Quick test_slo_nan_windows_are_good;
          Alcotest.test_case "below kind" `Quick test_slo_below_kind;
          Alcotest.test_case "evaluates from timeseries" `Quick test_slo_evaluates_from_timeseries;
          Alcotest.test_case "deterministic alert stream" `Quick test_slo_alerts_json_deterministic;
        ] );
      ( "flight",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_flight_disabled_is_noop;
          Alcotest.test_case "ring overwrites oldest" `Quick test_flight_ring_overwrites_oldest;
          Alcotest.test_case "snapshot budget" `Quick test_flight_snapshot_budget;
          Alcotest.test_case "captures spans and metrics" `Quick test_flight_span_and_metric_capture;
          Alcotest.test_case "deterministic dumps" `Quick test_flight_deterministic_dump;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting and inheritance" `Quick test_span_nesting;
          Alcotest.test_case "cross-fiber parenting" `Quick test_span_cross_fiber_parent;
          Alcotest.test_case "disabled records nothing" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "deterministic dumps" `Quick test_observability_determinism;
        ] );
      ( "properties",
        qcheck
          [
            prop_rng_int_in_bounds;
            prop_rng_float_in_bounds;
            prop_rng_deterministic;
            prop_rng_shuffle_permutation;
            prop_resource_conserves;
            prop_fault_plan_round_trip;
          ] );
    ]
