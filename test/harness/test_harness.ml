(* Tests for the load-generation and measurement harness, and for the
   linearizability checker. *)

module Load = Tango_harness.Load
module Lin = Tango_harness.Linearizability

let check_bool = Alcotest.(check bool)

let near ~tolerance expected actual =
  abs_float (actual -. expected) <= tolerance *. expected

let test_closed_loop_throughput () =
  (* Each op takes exactly 100 µs; 4 fibers -> 40K ops/s. *)
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:10_000. ~measure_us:100_000. ~fibers:4 (fun () ->
            Sim.Engine.sleep 100.;
            true))
  in
  check_bool "throughput 40K" true (near ~tolerance:0.02 40_000. r.Load.throughput);
  check_bool "goodput equals throughput" true (r.Load.goodput = r.Load.throughput);
  check_bool "latency 100us" true (near ~tolerance:0.02 100. r.Load.latency_mean_us)

let test_closed_loop_goodput () =
  let flip = ref false in
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:1_000. ~measure_us:50_000. ~fibers:1 (fun () ->
            Sim.Engine.sleep 50.;
            flip := not !flip;
            !flip))
  in
  check_bool "half the ops succeed" true
    (near ~tolerance:0.05 (r.Load.throughput /. 2.) r.Load.goodput)

let test_closed_loop_warmup_excluded () =
  (* Ops get fast after warmup; the slow phase must not pollute the
     latency stats. *)
  let r =
    Sim.Engine.run (fun () ->
        let slow = ref true in
        Sim.Engine.spawn (fun () ->
            Sim.Engine.sleep 50_000.;
            slow := false);
        Load.closed_loop ~warmup_us:60_000. ~measure_us:50_000. ~fibers:1 (fun () ->
            Sim.Engine.sleep (if !slow then 5_000. else 10.);
            true))
  in
  check_bool "no slow samples" true (r.Load.latency_p99_us < 100.)

let test_open_loop_rate () =
  let r =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:20_000. ~measure_us:200_000. ~rate:10_000. (fun () ->
            Sim.Engine.sleep 30.;
            true))
  in
  check_bool "matches offered rate" true (near ~tolerance:0.1 10_000. r.Load.throughput)

let test_open_loop_outstanding_cap () =
  (* Ops that never finish: the generator must stop at the cap instead
     of spawning unboundedly. *)
  let spawned = ref 0 in
  let (_ : Load.report) =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:1_000. ~measure_us:30_000. ~max_outstanding:50 ~rate:100_000.
          (fun () ->
            incr spawned;
            Sim.Engine.sleep 10_000_000.;
            true))
  in
  check_bool (Printf.sprintf "capped at 50, spawned %d" !spawned) true (!spawned <= 50)

let test_measure_counter () =
  let rate =
    Sim.Engine.run (fun () ->
        let n = ref 0 in
        Sim.Engine.spawn (fun () ->
            let rec tick () =
              Sim.Engine.sleep 100.;
              incr n;
              tick ()
            in
            tick ());
        Load.measure_counter ~warmup_us:5_000. ~measure_us:100_000. (fun () -> !n))
  in
  check_bool "10K/s" true (near ~tolerance:0.02 10_000. rate)

let test_report_samples () =
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:0. ~measure_us:10_000. ~fibers:2 (fun () ->
            Sim.Engine.sleep 1_000.;
            true))
  in
  check_bool (Printf.sprintf "sample count ~20, got %d" r.Load.samples) true
    (r.Load.samples >= 18 && r.Load.samples <= 20)

(* ------------------------------------------------------------------ *)
(* Linearizability checker                                            *)
(* ------------------------------------------------------------------ *)

let ev s f op = { Lin.started = s; finished = f; op }

let test_lin_sequential_ok () =
  check_bool "write then read" true
    (Lin.check_register [ ev 0. 1. (Lin.Write 5); ev 2. 3. (Lin.Read 5) ]);
  check_bool "read of initial" true (Lin.check_register [ ev 0. 1. (Lin.Read 0) ]);
  check_bool "empty history" true (Lin.check_register [])

let test_lin_stale_read_rejected () =
  (* Write completed strictly before the read began, yet the read
     returned the old value: not linearizable. *)
  check_bool "stale read" false
    (Lin.check_register [ ev 0. 1. (Lin.Write 5); ev 2. 3. (Lin.Read 0) ])

let test_lin_concurrent_flexibility () =
  (* A read concurrent with a write may return either value... *)
  check_bool "new value" true
    (Lin.check_register [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 5) ]);
  check_bool "old value" true
    (Lin.check_register [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 0) ]);
  (* ...but two sequential reads inside the write's window cannot see
     new-then-old. *)
  check_bool "non-monotonic reads" false
    (Lin.check_register
       [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 5); ev 3. 4. (Lin.Read 0) ])

let test_lin_write_order () =
  (* Sequential writes 1 then 2; a later read of 1 is stale. *)
  check_bool "overwritten value" false
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 1); ev 2. 3. (Lin.Write 2); ev 4. 5. (Lin.Read 1) ]);
  (* Concurrent writes: either can win. *)
  check_bool "either winner" true
    (Lin.check_register
       [ ev 0. 10. (Lin.Write 1); ev 0. 10. (Lin.Write 2); ev 11. 12. (Lin.Read 1) ])

let test_lin_rejects_bad_event () =
  match Lin.check_register [ ev 5. 1. (Lin.Read 0) ] with
  | _ -> Alcotest.fail "finished < started must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end: linearizability across reconfigurations                *)
(* ------------------------------------------------------------------ *)

module Chaos = Tango_harness.Chaos
module Register = Tango_objects.Tango_register

(* A small paced register workload: its observed history must stay
   within the checker's 62-event budget. Writers use globally unique
   values; [events] collects invocation/response times in virtual
   time. *)
let register_workload ~events ~cluster ~writes ~reads ~gap_us =
  let done_count = ref 0 in
  let record op started =
    events := { Lin.started; finished = Sim.Engine.now (); op } :: !events;
    incr done_count
  in
  let next_value = ref 0 in
  let spawn_worker name n work =
    let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name) in
    let reg = Register.attach rt ~oid:1 in
    Sim.Engine.spawn (fun () ->
        for _ = 1 to n do
          work reg;
          Sim.Engine.sleep gap_us
        done)
  in
  let write_op reg =
    incr next_value;
    let v = !next_value in
    let started = Sim.Engine.now () in
    Register.write reg v;
    record (Lin.Write v) started
  in
  spawn_worker "writer-a" writes write_op;
  spawn_worker "writer-b" writes write_op;
  spawn_worker "reader-a" reads (fun reg ->
      let started = Sim.Engine.now () in
      let v = Register.read reg in
      record (Lin.Read v) started);
  spawn_worker "reader-b" reads (fun reg ->
      let started = Sim.Engine.now () in
      let v = Register.read reg in
      record (Lin.Read v) started);
  done_count

(* Satellite: the §5 sequencer failover must be invisible to
   correctness — appends ride through the epoch change and the full
   observed history stays linearizable. *)
let test_lin_across_sequencer_failover () =
  let events, completed =
    Sim.Engine.run ~seed:77 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let events = ref [] in
        let done_count =
          register_workload ~events ~cluster ~writes:12 ~reads:12 ~gap_us:3_000.
        in
        Sim.Engine.sleep 15_000.;
        ignore (Corfu.Cluster.replace_sequencer cluster);
        Sim.Engine.sleep 400_000.;
        (!events, !done_count))
  in
  Alcotest.(check int) "every op completed" 48 completed;
  check_bool "within checker budget" true (List.length events <= 62);
  check_bool "linearizable across the epoch change" true (Lin.check_register events)

(* Acceptance: crash a storage node under concurrent register traffic;
   the monitor replaces it and the whole observed history — before,
   during, and after the outage — linearizes. *)
let test_lin_across_storage_crash () =
  let events, completed, recoveries =
    Sim.Engine.run ~seed:78 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let fault =
          Chaos.install ~seed:5 ~plan:[ (30_000., Sim.Fault.Crash "storage-0") ] cluster
        in
        Corfu.Cluster.start_failure_monitor cluster;
        let events = ref [] in
        let done_count =
          register_workload ~events ~cluster ~writes:12 ~reads:12 ~gap_us:8_000.
        in
        Sim.Engine.sleep 800_000.;
        (!events, !done_count, Chaos.incidents fault cluster))
  in
  Alcotest.(check int) "one recovery" 1 (List.length recoveries);
  let inc = List.hd recoveries in
  check_bool "unavailability window measured" true (inc.Chaos.inc_unavailable_us > 0.);
  Alcotest.(check int) "every op completed" 48 completed;
  check_bool "linearizable through crash and recovery" true (Lin.check_register events)

let () =
  Alcotest.run "harness"
    [
      ( "load",
        [
          Alcotest.test_case "closed loop throughput" `Quick test_closed_loop_throughput;
          Alcotest.test_case "closed loop goodput" `Quick test_closed_loop_goodput;
          Alcotest.test_case "warmup excluded" `Quick test_closed_loop_warmup_excluded;
          Alcotest.test_case "open loop rate" `Quick test_open_loop_rate;
          Alcotest.test_case "outstanding cap" `Quick test_open_loop_outstanding_cap;
          Alcotest.test_case "measure counter" `Quick test_measure_counter;
          Alcotest.test_case "report samples" `Quick test_report_samples;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "sequential histories" `Quick test_lin_sequential_ok;
          Alcotest.test_case "stale read rejected" `Quick test_lin_stale_read_rejected;
          Alcotest.test_case "concurrent flexibility" `Quick test_lin_concurrent_flexibility;
          Alcotest.test_case "write ordering" `Quick test_lin_write_order;
          Alcotest.test_case "rejects bad events" `Quick test_lin_rejects_bad_event;
        ] );
      ( "fault-plane",
        [
          Alcotest.test_case "linearizable across sequencer failover" `Quick
            test_lin_across_sequencer_failover;
          Alcotest.test_case "linearizable across storage crash" `Quick
            test_lin_across_storage_crash;
        ] );
    ]
