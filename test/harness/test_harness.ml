(* Tests for the load-generation and measurement harness, and for the
   linearizability checker. *)

module Load = Tango_harness.Load
module Lin = Tango_harness.Linearizability

let check_bool = Alcotest.(check bool)

let near ~tolerance expected actual =
  abs_float (actual -. expected) <= tolerance *. expected

let test_closed_loop_throughput () =
  (* Each op takes exactly 100 µs; 4 fibers -> 40K ops/s. *)
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:10_000. ~measure_us:100_000. ~fibers:4 (fun () ->
            Sim.Engine.sleep 100.;
            true))
  in
  check_bool "throughput 40K" true (near ~tolerance:0.02 40_000. r.Load.throughput);
  check_bool "goodput equals throughput" true (r.Load.goodput = r.Load.throughput);
  check_bool "latency 100us" true (near ~tolerance:0.02 100. r.Load.latency_mean_us)

let test_closed_loop_goodput () =
  let flip = ref false in
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:1_000. ~measure_us:50_000. ~fibers:1 (fun () ->
            Sim.Engine.sleep 50.;
            flip := not !flip;
            !flip))
  in
  check_bool "half the ops succeed" true
    (near ~tolerance:0.05 (r.Load.throughput /. 2.) r.Load.goodput)

let test_closed_loop_warmup_excluded () =
  (* Ops get fast after warmup; the slow phase must not pollute the
     latency stats. *)
  let r =
    Sim.Engine.run (fun () ->
        let slow = ref true in
        Sim.Engine.spawn (fun () ->
            Sim.Engine.sleep 50_000.;
            slow := false);
        Load.closed_loop ~warmup_us:60_000. ~measure_us:50_000. ~fibers:1 (fun () ->
            Sim.Engine.sleep (if !slow then 5_000. else 10.);
            true))
  in
  check_bool "no slow samples" true (r.Load.latency_p99_us < 100.)

let test_open_loop_rate () =
  let r =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:20_000. ~measure_us:200_000. ~rate:10_000. (fun () ->
            Sim.Engine.sleep 30.;
            true))
  in
  check_bool "matches offered rate" true (near ~tolerance:0.1 10_000. r.Load.throughput)

let test_open_loop_outstanding_cap () =
  (* Ops that never finish: the generator must stop at the cap instead
     of spawning unboundedly. *)
  let spawned = ref 0 in
  let (_ : Load.report) =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:1_000. ~measure_us:30_000. ~max_outstanding:50 ~rate:100_000.
          (fun () ->
            incr spawned;
            Sim.Engine.sleep 10_000_000.;
            true))
  in
  check_bool (Printf.sprintf "capped at 50, spawned %d" !spawned) true (!spawned <= 50)

let test_open_loop_invalid_rate () =
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Load.open_loop: rate must be positive") (fun () ->
      Sim.Engine.run (fun () ->
          ignore (Load.open_loop ~rate:0. (fun () -> true))));
  Alcotest.check_raises "negative rate rejected"
    (Invalid_argument "Load.open_loop: rate must be positive") (fun () ->
      Sim.Engine.run (fun () ->
          ignore (Load.open_loop ~rate:(-5.) (fun () -> true))))

let test_open_loop_rate_near_zero () =
  (* A trickle — mean gap 20 ms against a 2 s window. The loop must
     neither spin nor stall, and the handful of completions must all be
     counted. *)
  let completions = ref 0 in
  let r =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:0. ~measure_us:2_000_000. ~rate:50. (fun () ->
            Sim.Engine.sleep 10.;
            incr completions;
            true))
  in
  check_bool
    (Printf.sprintf "trickle rate ~50/s, got %.1f" r.Load.throughput)
    true
    (near ~tolerance:0.4 50. r.Load.throughput);
  check_bool "samples match completions" true (r.Load.samples <= !completions)

let test_open_loop_saturated_cap () =
  (* Offered load far above capacity: with [max_outstanding] ops of a
     fixed 50 ms service each, completions must pin at cap / service =
     200/s regardless of the offered 1M/s. *)
  let r =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:100_000. ~measure_us:500_000. ~max_outstanding:10
          ~rate:1_000_000. (fun () ->
            Sim.Engine.sleep 50_000.;
            true))
  in
  check_bool
    (Printf.sprintf "saturated at 200/s, got %.1f" r.Load.throughput)
    true
    (near ~tolerance:0.05 200. r.Load.throughput)

let test_open_loop_window_boundary () =
  (* Only completions inside [warmup, warmup + measure) may count.
     Every op takes exactly 10 ms, so completion times are arrival +
     10 ms; compare the report's sample count against an external count
     over the same window. *)
  let warmup = 20_000. and measure = 50_000. in
  let in_window = ref 0 in
  let total = ref 0 in
  let r =
    Sim.Engine.run (fun () ->
        Load.open_loop ~warmup_us:warmup ~measure_us:measure ~rate:2_000. (fun () ->
            Sim.Engine.sleep 10_000.;
            let t = Sim.Engine.now () in
            incr total;
            if t >= warmup && t < warmup +. measure then incr in_window;
            true))
  in
  check_bool "ops completed outside the window too" true (!total > !in_window);
  Alcotest.(check int) "window boundary exact" !in_window r.Load.samples

(* ------------------------------------------------------------------ *)
(* Aggregate client population                                        *)
(* ------------------------------------------------------------------ *)

let pop_cfg =
  {
    Load.Population.default_cfg with
    Load.Population.clients = 2_000;
    rate_per_client = 2.;
    link_us = 200.;
    service_us = 50.;
    stations = 4;
    station_slots = 4;
    warmup_us = 20_000.;
    measure_us = 100_000.;
    drain_us = 5_000.;
    seed = 9;
  }

let run_population ?(shards = 1) cfg =
  let pop = Load.Population.create ~shards cfg in
  let body () =
    Load.Population.shard_init pop ~shard:0;
    Load.Population.await pop
  in
  if shards = 1 then Sim.Engine.run body
  else
    Sim.Engine.run_sharded ~shards ~lookahead:cfg.Load.Population.link_us
      ~init:(fun ~shard -> Load.Population.shard_init pop ~shard)
      body

let test_population_conservation () =
  let r = run_population pop_cfg in
  let open Load.Population in
  (* 2000 clients × 2/s over the 120 ms generation span ≈ 480 arrivals. *)
  check_bool "issued some load" true (r.pop_issued > 300);
  Alcotest.(check int) "issued = completed + inflight" r.pop_issued
    (r.pop_completed + r.pop_inflight);
  check_bool "inflight small after drain" true (r.pop_inflight >= 0 && r.pop_inflight < 100);
  check_bool "throughput positive" true (r.pop_report.Load.throughput > 0.);
  (* ~2000 clients × 2/s over the 100 ms window = ~400 windowed ops. *)
  check_bool
    (Printf.sprintf "windowed throughput ~4000/s, got %.0f" r.pop_report.Load.throughput)
    true
    (near ~tolerance:0.25 4_000. r.pop_report.Load.throughput)

let test_population_drops_under_cap () =
  (* One outstanding op per client against a 100× service blowup: the
     population must shed load via drops, not queue unboundedly. *)
  let cfg =
    { pop_cfg with Load.Population.max_outstanding = 1; service_us = 20_000.; stations = 1;
      station_slots = 1 }
  in
  let r = run_population cfg in
  let open Load.Population in
  check_bool "drops happened" true (r.pop_dropped > 0);
  Alcotest.(check int) "conservation under drops" r.pop_issued
    (r.pop_completed + r.pop_inflight)

let test_population_deterministic () =
  let a = run_population pop_cfg and b = run_population pop_cfg in
  check_bool "same-seed population runs identical" true (a = b)

let test_population_sharded () =
  (* Two domains: conservation and determinism must survive the
     cross-shard client↔station traffic. *)
  let a = run_population ~shards:2 pop_cfg in
  let b = run_population ~shards:2 pop_cfg in
  let open Load.Population in
  Alcotest.(check int) "sharded conservation" a.pop_issued (a.pop_completed + a.pop_inflight);
  check_bool "sharded issued some load" true (a.pop_issued > 300);
  check_bool "sharded same-seed runs identical" true (a = b)

let test_population_invalid_cfg () =
  let open Load.Population in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Population.create: rate must be positive") (fun () ->
      ignore (create { pop_cfg with rate_per_client = 0. }));
  Alcotest.check_raises "fewer clients than shards"
    (Invalid_argument "Population.create: need at least one client per shard") (fun () ->
      ignore (create ~shards:8 { pop_cfg with clients = 4 }));
  Alcotest.check_raises "no stations"
    (Invalid_argument "Population.create: need at least one station and slot") (fun () ->
      ignore (create { pop_cfg with stations = 0 }))

let test_measure_counter () =
  let rate =
    Sim.Engine.run (fun () ->
        let n = ref 0 in
        Sim.Engine.spawn (fun () ->
            let rec tick () =
              Sim.Engine.sleep 100.;
              incr n;
              tick ()
            in
            tick ());
        Load.measure_counter ~warmup_us:5_000. ~measure_us:100_000. (fun () -> !n))
  in
  check_bool "10K/s" true (near ~tolerance:0.02 10_000. rate)

let test_report_samples () =
  let r =
    Sim.Engine.run (fun () ->
        Load.closed_loop ~warmup_us:0. ~measure_us:10_000. ~fibers:2 (fun () ->
            Sim.Engine.sleep 1_000.;
            true))
  in
  check_bool (Printf.sprintf "sample count ~20, got %d" r.Load.samples) true
    (r.Load.samples >= 18 && r.Load.samples <= 20)

(* ------------------------------------------------------------------ *)
(* Linearizability checker                                            *)
(* ------------------------------------------------------------------ *)

let ev s f op = { Lin.started = s; finished = f; op }

let test_lin_sequential_ok () =
  check_bool "write then read" true
    (Lin.check_register [ ev 0. 1. (Lin.Write 5); ev 2. 3. (Lin.Read 5) ]);
  check_bool "read of initial" true (Lin.check_register [ ev 0. 1. (Lin.Read 0) ]);
  check_bool "empty history" true (Lin.check_register [])

let test_lin_stale_read_rejected () =
  (* Write completed strictly before the read began, yet the read
     returned the old value: not linearizable. *)
  check_bool "stale read" false
    (Lin.check_register [ ev 0. 1. (Lin.Write 5); ev 2. 3. (Lin.Read 0) ])

let test_lin_concurrent_flexibility () =
  (* A read concurrent with a write may return either value... *)
  check_bool "new value" true
    (Lin.check_register [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 5) ]);
  check_bool "old value" true
    (Lin.check_register [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 0) ]);
  (* ...but two sequential reads inside the write's window cannot see
     new-then-old. *)
  check_bool "non-monotonic reads" false
    (Lin.check_register
       [ ev 0. 10. (Lin.Write 5); ev 1. 2. (Lin.Read 5); ev 3. 4. (Lin.Read 0) ])

let test_lin_write_order () =
  (* Sequential writes 1 then 2; a later read of 1 is stale. *)
  check_bool "overwritten value" false
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 1); ev 2. 3. (Lin.Write 2); ev 4. 5. (Lin.Read 1) ]);
  (* Concurrent writes: either can win. *)
  check_bool "either winner" true
    (Lin.check_register
       [ ev 0. 10. (Lin.Write 1); ev 0. 10. (Lin.Write 2); ev 11. 12. (Lin.Read 1) ])

let test_lin_rejects_bad_event () =
  match Lin.check_register [ ev 5. 1. (Lin.Read 0) ] with
  | _ -> Alcotest.fail "finished < started must be rejected"
  | exception Invalid_argument _ -> ()

let test_lin_cas () =
  let cas expected desired ok = Lin.Cas { expected; desired; ok } in
  (* successful CAS must sit where the register held [expected] *)
  check_bool "cas chain" true
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 1); ev 2. 3. (cas 1 2 true); ev 4. 5. (Lin.Read 2) ]);
  check_bool "cas on wrong value cannot succeed" false
    (Lin.check_register [ ev 0. 1. (Lin.Write 5); ev 2. 3. (cas 1 2 true) ]);
  (* failed CAS must NOT sit where the register held [expected] *)
  check_bool "failed cas on matching value" false
    (Lin.check_register [ ev 0. 1. (Lin.Write 1); ev 2. 3. (cas 1 2 false) ]);
  check_bool "failed cas leaves value" true
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 5); ev 2. 3. (cas 1 2 false); ev 4. 5. (Lin.Read 5) ]);
  (* two concurrent CASes on the same expected value: exactly one can
     win, and the loser's failure is what makes the history legal *)
  check_bool "cas race, one winner" true
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 1); ev 2. 9. (cas 1 2 true); ev 2. 9. (cas 1 3 false); ev 10. 11. (Lin.Read 2) ]);
  check_bool "cas race, two winners impossible" false
    (Lin.check_register
       [ ev 0. 1. (Lin.Write 1); ev 2. 9. (cas 1 2 true); ev 2. 9. (cas 1 3 true) ])

(* The old checker rejected histories longer than 62 ops (bitmask). A
   deep sequential chain is linear-time for the search, so length is
   the only thing this exercises. *)
let test_lin_long_history () =
  let n = 300 in
  let history =
    List.concat_map
      (fun i ->
        let t = float_of_int (4 * i) in
        [ ev t (t +. 1.) (Lin.Write i); ev (t +. 2.) (t +. 3.) (Lin.Read i) ])
      (List.init n (fun i -> i))
  in
  check_bool "300 sequential pairs linearize" true (Lin.check_register history);
  let stale = history @ [ ev 10_000. 10_001. (Lin.Read 0) ] in
  check_bool "stale tail still caught" false (Lin.check_register stale)

let test_lin_work_limit () =
  (* Everything concurrent and unsatisfiable: the search has to explore
     a combinatorial frontier, so a tiny state budget trips. *)
  let history =
    List.init 16 (fun i -> ev 0. 100. (Lin.Write i))
    @ [ ev 101. 102. (Lin.Read 999) ]
  in
  match Lin.check_register ~max_states:50 history with
  | _ -> Alcotest.fail "expected Work_limit"
  | exception Lin.Work_limit -> ()

(* ------------------------------------------------------------------ *)
(* Verifier oracles (pure, hand-built observations)                    *)
(* ------------------------------------------------------------------ *)

module Verifier = Tango_harness.Verifier

let oracle_names vs = List.map (fun v -> v.Verifier.v_oracle) vs

let test_verifier_durability () =
  let store = [ (0, Bytes.of_string "a"); (2, Bytes.of_string "b") ] in
  let read off = List.assoc_opt off store in
  Alcotest.(check (list string)) "clean" []
    (oracle_names (Verifier.durability ~acked:store ~read));
  Alcotest.(check (list string)) "lost write" [ "durability" ]
    (oracle_names
       (Verifier.durability ~acked:[ (1, Bytes.of_string "x") ] ~read));
  Alcotest.(check (list string)) "corrupt write" [ "durability" ]
    (oracle_names
       (Verifier.durability ~acked:[ (0, Bytes.of_string "WRONG") ] ~read))

let test_verifier_hole_freedom () =
  let resolve = function 1 -> `Unresolved | 2 -> `Junk | _ -> `Data in
  Alcotest.(check (list string)) "hole below tail" [ "hole-freedom" ]
    (oracle_names (Verifier.hole_freedom ~tail:4 ~resolve));
  Alcotest.(check (list string)) "tail below the hole" []
    (oracle_names (Verifier.hole_freedom ~tail:1 ~resolve))

let test_verifier_stream_order () =
  let views order = [ ("a", [ (1, order) ]); ("b", [ (1, [ 0; 3; 7 ]) ]) ] in
  Alcotest.(check (list string)) "agreeing views" []
    (oracle_names (Verifier.stream_order ~acked:[ (1, 3) ] ~views:(views [ 0; 3; 7 ])));
  check_bool "non-ascending view caught" true
    (List.mem "stream-order"
       (oracle_names (Verifier.stream_order ~acked:[] ~views:(views [ 3; 0; 7 ]))));
  check_bool "divergent views caught" true
    (List.mem "stream-order"
       (oracle_names (Verifier.stream_order ~acked:[] ~views:(views [ 0; 7 ]))));
  check_bool "acked entry missing from playback" true
    (List.mem "stream-order"
       (oracle_names
          (Verifier.stream_order ~acked:[ (1, 5) ] ~views:(views [ 0; 3; 7 ]))))

let test_verifier_convergence_and_atomicity () =
  Alcotest.(check (list string)) "converged" []
    (oracle_names (Verifier.convergence ~states:[ ("a", "s"); ("b", "s") ]));
  Alcotest.(check (list string)) "diverged" [ "convergence" ]
    (oracle_names (Verifier.convergence ~states:[ ("a", "s"); ("b", "t") ]));
  let probe tag committed in_map in_set =
    { Verifier.t_tag = tag; t_committed = committed; t_in_map = in_map; t_in_set = in_set }
  in
  Alcotest.(check (list string)) "clean txs" []
    (oracle_names
       (Verifier.atomicity ~txs:[ probe "t1" true true true; probe "t2" false false false ]));
  Alcotest.(check (list string)) "torn commit" [ "atomicity" ]
    (oracle_names (Verifier.atomicity ~txs:[ probe "t3" true true false ]));
  Alcotest.(check (list string)) "leaked abort" [ "atomicity" ]
    (oracle_names (Verifier.atomicity ~txs:[ probe "t4" false true true ]))

(* Pathological observation shapes the normal fuzz path never builds:
   the oracles must degrade to "nothing to say", not crash or
   fabricate violations. *)
let test_verifier_pathological_histories () =
  (* Empty acked set: durability has no obligations. *)
  Alcotest.(check (list string)) "empty acked set" []
    (oracle_names (Verifier.durability ~acked:[] ~read:(fun _ -> None)));
  (* The same acked offset reported twice (an at-least-once ack path):
     one readable copy satisfies both records, and a mismatch still
     fires once per record. *)
  let dup = [ (3, Bytes.of_string "a"); (3, Bytes.of_string "a") ] in
  let read = function 3 -> Some (Bytes.of_string "a") | _ -> None in
  Alcotest.(check (list string)) "duplicate acked offsets, consistent" []
    (oracle_names (Verifier.durability ~acked:dup ~read));
  Alcotest.(check (list string)) "duplicate acked offsets, lost -> one summary violation"
    [ "durability" ]
    (oracle_names
       (Verifier.durability
          ~acked:[ (9, Bytes.of_string "x"); (9, Bytes.of_string "x") ]
          ~read));
  (* Duplicate acked (stream, offset) pairs must not demand duplicate
     playback entries. *)
  Alcotest.(check (list string)) "duplicate acked stream members" []
    (oracle_names
       (Verifier.stream_order ~acked:[ (1, 4); (1, 4) ]
          ~views:[ ("a", [ (1, [ 0; 4 ]) ]); ("b", [ (1, [ 0; 4 ]) ]) ]));
  (* A single client's view: no peer to diverge from, but ordering and
     acked-coverage still apply. *)
  Alcotest.(check (list string)) "single view, clean" []
    (oracle_names (Verifier.stream_order ~acked:[ (1, 4) ] ~views:[ ("solo", [ (1, [ 0; 4 ]) ]) ]));
  check_bool "single view, non-ascending still caught" true
    (List.mem "stream-order"
       (oracle_names (Verifier.stream_order ~acked:[] ~views:[ ("solo", [ (1, [ 4; 0 ]) ]) ])));
  check_bool "single view, missing acked entry still caught" true
    (List.mem "stream-order"
       (oracle_names (Verifier.stream_order ~acked:[ (1, 9) ] ~views:[ ("solo", [ (1, [ 0 ]) ]) ])));
  (* An aborted tx whose marker is only partially visible is a leak,
     not a tear: every partial-visibility shape must fire. *)
  let probe committed in_map in_set =
    { Verifier.t_tag = "t"; t_committed = committed; t_in_map = in_map; t_in_set = in_set }
  in
  Alcotest.(check (list string)) "aborted tx partially visible (map only)" [ "atomicity" ]
    (oracle_names (Verifier.atomicity ~txs:[ probe false true false ]));
  Alcotest.(check (list string)) "aborted tx partially visible (set only)" [ "atomicity" ]
    (oracle_names (Verifier.atomicity ~txs:[ probe false false true ]));
  Alcotest.(check (list string)) "empty tx set" []
    (oracle_names (Verifier.atomicity ~txs:[]))

(* ------------------------------------------------------------------ *)
(* Fuzzer: clean smoke, determinism, artifact codec, sensitivity       *)
(* ------------------------------------------------------------------ *)

module Fuzz = Tango_harness.Fuzz

(* One trimmed-down case per test keeps the suite fast; the CI
   fuzz-smoke job and bench sweep run the full-size campaigns. *)
let small_config =
  {
    Fuzz.default_config with
    f_servers = 4;
    f_clients = 2;
    f_appends = 8;
    f_txs = 4;
    f_events = 4;
    f_deadline_us = 2_000_000.;
  }

let test_fuzz_clean_smoke () =
  let plan = Fuzz.gen_plan ~seed:42 small_config in
  check_bool "plan not empty" true (plan <> []);
  let oc = Fuzz.run ~seed:42 small_config ~plan in
  Alcotest.(check (list string)) "no violations on a clean build" []
    (oracle_names oc.Fuzz.oc_violations);
  Alcotest.(check int) "every append acked" 16 oc.Fuzz.oc_acked;
  Alcotest.(check int) "every tx decided" 8 (oc.Fuzz.oc_committed + oc.Fuzz.oc_aborted);
  check_bool "faults actually ran" true (oc.Fuzz.oc_fault_events >= List.length plan)

let test_fuzz_deterministic_replay () =
  let plan = Fuzz.gen_plan ~seed:43 small_config in
  let a = Fuzz.run ~capture_spans:true ~seed:43 small_config ~plan in
  let b = Fuzz.run ~capture_spans:true ~seed:43 small_config ~plan in
  Alcotest.(check string) "metrics byte-identical" a.Fuzz.oc_metrics_json b.Fuzz.oc_metrics_json;
  check_bool "span dumps present" true (a.Fuzz.oc_spans_json <> None);
  Alcotest.(check (option string)) "span dumps byte-identical" a.Fuzz.oc_spans_json
    b.Fuzz.oc_spans_json

let test_fuzz_artifact_roundtrip () =
  let plan = Fuzz.gen_plan ~seed:44 small_config in
  let doc = Fuzz.encode_artifact ~seed:44 small_config plan in
  let seed', config', plan' = Fuzz.decode_artifact doc in
  Alcotest.(check int) "seed" 44 seed';
  check_bool "config" true (config' = small_config);
  check_bool "plan" true (Sim.Fault.equal_plan plan plan');
  match Fuzz.decode_artifact "{\"version\":9,\"tool\":\"tango-fuzz\"}" with
  | _ -> Alcotest.fail "unknown artifact version accepted"
  | exception Invalid_argument _ -> ()

(* Sensitivity: with the rebuild scan disabled (an injected recovery
   bug), the fuzzer must find a violation within a few seeds and shrink
   it to a <=5 event reproducer that still trips the same oracle — and
   no longer trips anything once the failpoint is off. *)
let test_fuzz_finds_injected_bug () =
  let failpoint = "skip-rebuild-scan" in
  let rec hunt seed =
    if seed > 8 then Alcotest.fail "no violation found in 8 seeds"
    else
      let plan = Fuzz.gen_plan ~seed small_config in
      let oc = Fuzz.run ~failpoint ~seed small_config ~plan in
      match oc.Fuzz.oc_violations with
      | [] -> hunt (seed + 1)
      | v :: _ -> (seed, plan, v.Tango_harness.Verifier.v_oracle)
  in
  let seed, plan, oracle = hunt 1 in
  let sh = Fuzz.shrink ~failpoint ~seed small_config plan ~oracle in
  check_bool
    (Printf.sprintf "shrunk to %d events (<=5)" (List.length sh.Fuzz.sh_plan))
    true
    (List.length sh.Fuzz.sh_plan <= 5);
  check_bool "budget respected" true (sh.Fuzz.sh_runs <= small_config.Fuzz.f_shrink_runs);
  let again = Fuzz.run ~failpoint ~seed small_config ~plan:sh.Fuzz.sh_plan in
  check_bool "shrunk plan still trips the oracle" true
    (List.mem sh.Fuzz.sh_oracle (oracle_names again.Fuzz.oc_violations));
  let clean = Fuzz.run ~seed small_config ~plan:sh.Fuzz.sh_plan in
  Alcotest.(check (list string)) "clean build passes the reproducer" []
    (oracle_names clean.Fuzz.oc_violations)

(* ------------------------------------------------------------------ *)
(* Spec plane: online temporal monitors (DESIGN.md §12)               *)
(* ------------------------------------------------------------------ *)

module Spec = Tango_harness.Spec
module Scenario = Tango_harness.Scenario

let spec_oracles oc =
  List.filter (fun o -> String.length o > 5 && String.sub o 0 5 = "spec:")
    (oracle_names oc.Fuzz.oc_violations)

(* A fault-free-build campaign with every machine armed must stay
   silent, and arming the machines must not break determinism: the
   checker fiber and probe client are part of the schedule, so two
   same-seed runs still produce byte-identical dumps. *)
let test_spec_clean_and_deterministic () =
  let plan = Fuzz.gen_plan ~seed:46 small_config in
  let a = Fuzz.run ~specs:Spec.all ~seed:46 small_config ~plan in
  let b = Fuzz.run ~specs:Spec.all ~seed:46 small_config ~plan in
  Alcotest.(check (list string)) "no firings on a clean build" [] (spec_oracles a);
  Alcotest.(check (list string)) "no violations at all" [] (oracle_names a.Fuzz.oc_violations);
  check_bool "no spec firings recorded" true (a.Fuzz.oc_spec_firings = []);
  Alcotest.(check string) "metrics byte-identical with specs armed" a.Fuzz.oc_metrics_json
    b.Fuzz.oc_metrics_json

(* Each spec machine must catch its tailored injected bug while the
   run executes — the firing's virtual timestamp is strictly earlier
   than the campaign end — and the firing must shrink like any other
   oracle, to a <=5 event reproducer. *)
let check_spec_fires ~failpoint ~specs ~spec_name ~seed ~plan ?(shrink = true) () =
  let oracle = "spec:" ^ spec_name in
  let oc = Fuzz.run ~failpoint ~specs ~seed small_config ~plan in
  check_bool (oracle ^ " among violations") true
    (List.mem oracle (oracle_names oc.Fuzz.oc_violations));
  let f =
    match List.find_opt (fun f -> f.Spec.sp_spec = spec_name) oc.Fuzz.oc_spec_firings with
    | Some f -> f
    | None -> Alcotest.fail (spec_name ^ " has no recorded firing")
  in
  check_bool
    (Printf.sprintf "fired mid-run (t=%.0fus < end=%.0fus)" f.Spec.sp_time_us oc.Fuzz.oc_end_us)
    true
    (f.Spec.sp_time_us < oc.Fuzz.oc_end_us);
  check_bool "flight recorder captured the firing" true (oc.Fuzz.oc_flight_json <> None);
  if shrink then begin
    let sh = Fuzz.shrink ~failpoint ~specs ~seed small_config plan ~oracle in
    check_bool
      (Printf.sprintf "shrunk to %d events (<=5)" (List.length sh.Fuzz.sh_plan))
      true
      (List.length sh.Fuzz.sh_plan <= 5);
    Alcotest.(check string) "shrink preserved the spec oracle" oracle sh.Fuzz.sh_oracle
  end

let test_spec_commit_liveness_fires () =
  (* The lost rebuild scan needs a takeover racing live appends: an
     append acked between two probe syncs is only reachable through
     the old sequencer's stream tails, which the failpoint discards.
     The takeover time is swept across the append burst because the
     exact ack/sync interleaving is seed-dependent. *)
  let failpoint = "skip-rebuild-scan" and specs = [ Spec.Commit_liveness ] in
  let takeover at = [ (at, Sim.Fault.Custom ("replace-sequencer", fun () -> ())) ] in
  let rec hunt = function
    | [] -> Alcotest.fail "commit-liveness never fired across the takeover sweep"
    | at :: rest ->
        let oc = Fuzz.run ~failpoint ~specs ~seed:1 small_config ~plan:(takeover at) in
        if List.mem "spec:commit-liveness" (oracle_names oc.Fuzz.oc_violations) then takeover at
        else hunt rest
  in
  let plan = hunt [ 15_000.; 12_000.; 18_000.; 9_000.; 21_000.; 6_000. ] in
  check_spec_fires ~failpoint ~specs ~spec_name:"commit-liveness" ~seed:1 ~plan ()

let test_spec_read_committed_fires () =
  (* Blind commit application is workload-triggered; no fault plan
     needed at all, which also makes the shrink trivially minimal. *)
  check_spec_fires ~failpoint:"blind-commit-apply" ~specs:[ Spec.Read_committed ]
    ~spec_name:"read-committed" ~seed:1 ~plan:[] ()

let test_spec_reconfig_termination_fires () =
  check_spec_fires ~failpoint:"stall-reconfig" ~specs:[ Spec.Reconfig_termination ]
    ~spec_name:"reconfig-termination" ~seed:1
    ~plan:[ (30_000., Sim.Fault.Custom ("replace-sequencer", fun () -> ())) ]
    ()

let test_spec_names_roundtrip () =
  List.iter (fun s -> check_bool (Spec.name s) true (Spec.of_name (Spec.name s) = s)) Spec.all;
  match Spec.of_name "nonsense" with
  | _ -> Alcotest.fail "unknown spec name accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Scenario driver                                                    *)
(* ------------------------------------------------------------------ *)

let test_scenario_roundtrip () =
  let sc =
    {
      Scenario.sc_name = "rt";
      sc_seed = 5;
      sc_config = small_config;
      sc_plan =
        [
          (10_000., Sim.Fault.Crash "storage-1");
          (20_000., Sim.Fault.Custom ("replace-sequencer", fun () -> ()));
          (30_000., Sim.Fault.Restart "storage-1");
        ];
      sc_specs = [ Spec.Commit_liveness; Spec.Reconfig_termination ];
      sc_spec_deadline_us = Some 250_000.;
      sc_failpoint = Some "skip-rebuild-scan";
    }
  in
  let sc' = Scenario.decode (Scenario.encode sc) in
  Alcotest.(check string) "name" sc.Scenario.sc_name sc'.Scenario.sc_name;
  Alcotest.(check int) "seed" sc.Scenario.sc_seed sc'.Scenario.sc_seed;
  check_bool "config" true (sc'.Scenario.sc_config = small_config);
  check_bool "plan" true (Sim.Fault.equal_plan sc.Scenario.sc_plan sc'.Scenario.sc_plan);
  check_bool "specs" true (sc'.Scenario.sc_specs = sc.Scenario.sc_specs);
  Alcotest.(check (option (float 1e-9))) "deadline" sc.Scenario.sc_spec_deadline_us
    sc'.Scenario.sc_spec_deadline_us;
  Alcotest.(check (option string)) "failpoint" sc.Scenario.sc_failpoint sc'.Scenario.sc_failpoint;
  (* Optional fields omitted from the document decode as None. *)
  let bare =
    Scenario.decode
      (Scenario.encode { sc with Scenario.sc_spec_deadline_us = None; sc_failpoint = None })
  in
  check_bool "no deadline" true (bare.Scenario.sc_spec_deadline_us = None);
  check_bool "no failpoint" true (bare.Scenario.sc_failpoint = None);
  match Scenario.decode "{\"version\":99,\"tool\":\"tango-scenario\"}" with
  | _ -> Alcotest.fail "unknown scenario version accepted"
  | exception Invalid_argument _ -> ()

let test_scenario_builtins_run_clean () =
  check_bool "takeover scenario registered" true
    (Scenario.find "sequencer-takeover-under-partition" <> None);
  check_bool "unknown name" true (Scenario.find "no-such-scenario" = None);
  List.iter
    (fun sc ->
      let oc = Scenario.run sc in
      Alcotest.(check (list string)) (sc.Scenario.sc_name ^ " clean") []
        (oracle_names oc.Fuzz.oc_violations);
      check_bool (sc.Scenario.sc_name ^ " did work") true (oc.Fuzz.oc_acked > 0))
    Scenario.builtins

let test_fuzz_report_schema () =
  let plan = Fuzz.gen_plan ~seed:45 small_config in
  let oc = Fuzz.run ~seed:45 small_config ~plan in
  let doc = Sim.Jin.parse (Fuzz.report_json ~runs:[ (45, oc) ]) in
  Alcotest.(check int) "schema_version" 1 (Sim.Jin.to_int (Sim.Jin.member "schema_version" doc));
  Alcotest.(check string) "tool" "tango-fuzz" (Sim.Jin.to_string (Sim.Jin.member "tool" doc));
  Alcotest.(check int) "violations" 0 (Sim.Jin.to_int (Sim.Jin.member "violations" doc));
  let runs = Sim.Jin.to_list (Sim.Jin.member "runs" doc) in
  Alcotest.(check int) "one run" 1 (List.length runs);
  let r = List.hd runs in
  Alcotest.(check int) "seed" 45 (Sim.Jin.to_int (Sim.Jin.member "seed" r));
  Alcotest.(check int) "acked" oc.Fuzz.oc_acked
    (Sim.Jin.to_int (Sim.Jin.member "acked_appends" r))

(* ------------------------------------------------------------------ *)
(* End-to-end: linearizability across reconfigurations                *)
(* ------------------------------------------------------------------ *)

module Chaos = Tango_harness.Chaos
module Register = Tango_objects.Tango_register

(* A small paced register workload: its observed history must stay
   within the checker's 62-event budget. Writers use globally unique
   values; [events] collects invocation/response times in virtual
   time. *)
let register_workload ~events ~cluster ~writes ~reads ~gap_us =
  let done_count = ref 0 in
  let record op started =
    events := { Lin.started; finished = Sim.Engine.now (); op } :: !events;
    incr done_count
  in
  let next_value = ref 0 in
  let spawn_worker name n work =
    let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name) in
    let reg = Register.attach rt ~oid:1 in
    Sim.Engine.spawn (fun () ->
        for _ = 1 to n do
          work reg;
          Sim.Engine.sleep gap_us
        done)
  in
  let write_op reg =
    incr next_value;
    let v = !next_value in
    let started = Sim.Engine.now () in
    Register.write reg v;
    record (Lin.Write v) started
  in
  spawn_worker "writer-a" writes write_op;
  spawn_worker "writer-b" writes write_op;
  spawn_worker "reader-a" reads (fun reg ->
      let started = Sim.Engine.now () in
      let v = Register.read reg in
      record (Lin.Read v) started);
  spawn_worker "reader-b" reads (fun reg ->
      let started = Sim.Engine.now () in
      let v = Register.read reg in
      record (Lin.Read v) started);
  done_count

(* Satellite: the §5 sequencer failover must be invisible to
   correctness — appends ride through the epoch change and the full
   observed history stays linearizable. *)
let test_lin_across_sequencer_failover () =
  let events, completed =
    Sim.Engine.run ~seed:77 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let events = ref [] in
        let done_count =
          register_workload ~events ~cluster ~writes:12 ~reads:12 ~gap_us:3_000.
        in
        Sim.Engine.sleep 15_000.;
        ignore (Corfu.Cluster.replace_sequencer cluster);
        Sim.Engine.sleep 400_000.;
        (!events, !done_count))
  in
  Alcotest.(check int) "every op completed" 48 completed;
  check_bool "within checker budget" true (List.length events <= 62);
  check_bool "linearizable across the epoch change" true (Lin.check_register events)

(* Acceptance: crash a storage node under concurrent register traffic;
   the monitor replaces it and the whole observed history — before,
   during, and after the outage — linearizes. *)
let test_lin_across_storage_crash () =
  let events, completed, recoveries =
    Sim.Engine.run ~seed:78 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let fault =
          Chaos.install ~seed:5 ~plan:[ (30_000., Sim.Fault.Crash "storage-0") ] cluster
        in
        Corfu.Cluster.start_failure_monitor cluster;
        let events = ref [] in
        let done_count =
          register_workload ~events ~cluster ~writes:12 ~reads:12 ~gap_us:8_000.
        in
        Sim.Engine.sleep 800_000.;
        (!events, !done_count, Chaos.incidents fault cluster))
  in
  Alcotest.(check int) "one recovery" 1 (List.length recoveries);
  let inc = List.hd recoveries in
  check_bool "unavailability window measured" true (inc.Chaos.inc_unavailable_us > 0.);
  Alcotest.(check int) "every op completed" 48 completed;
  check_bool "linearizable through crash and recovery" true (Lin.check_register events)

(* ------------------------------------------------------------------ *)
(* Report: schema v2 round-trip and v1 back-compat                    *)
(* ------------------------------------------------------------------ *)

let test_report_v2_roundtrip () =
  let module R = Tango_harness.Report in
  R.clear ();
  R.enable ();
  Fun.protect ~finally:R.clear @@ fun () ->
  let x, perf = R.with_perf (fun () -> Sys.opaque_identity (String.make 64 'x')) in
  Alcotest.(check int) "with_perf returns the result" 64 (String.length x);
  check_bool "wall clock nonnegative" true (perf.R.wall_s >= 0.);
  check_bool "allocation observed" true (perf.R.gc_minor_words > 0.);
  R.add_scenario ~name:"with-perf" ~seed:3 ~summary:[ ("ops", 42.) ] ~perf ~virtual_end_us:10.
    ~metrics_json:"{}" ();
  R.add_scenario ~name:"no-perf" ~seed:4 ~virtual_end_us:0. ~metrics_json:"{}" ();
  let p = R.parse (R.to_json ()) in
  Alcotest.(check int) "version" R.schema_version p.R.p_version;
  Alcotest.(check string) "tool" "tango-bench" p.R.p_tool;
  Alcotest.(check int) "two scenarios" 2 (List.length p.R.p_scenarios);
  let s1 = List.hd p.R.p_scenarios and s2 = List.nth p.R.p_scenarios 1 in
  Alcotest.(check string) "name" "with-perf" s1.R.ps_name;
  Alcotest.(check int) "seed" 3 s1.R.ps_seed;
  Alcotest.(check (list (pair string (float 1e-9)))) "summary" [ ("ops", 42.) ] s1.R.ps_summary;
  (match s1.R.ps_perf with
  | None -> Alcotest.fail "perf must round-trip"
  | Some q ->
      Alcotest.(check (float 1e-9)) "minor words" perf.R.gc_minor_words q.R.gc_minor_words;
      Alcotest.(check (float 1e-9)) "major words" perf.R.gc_major_words q.R.gc_major_words;
      Alcotest.(check (float 1e-9)) "wall" perf.R.wall_s q.R.wall_s);
  check_bool "perf omitted stays None" true (s2.R.ps_perf = None)

let test_report_v1_decode () =
  (* A canned schema-1 document (written before "perf" existed) must
     still parse, with ps_perf = None. *)
  let module R = Tango_harness.Report in
  let v1 =
    {|{"schema_version": 1, "tool": "tango-bench", "scenarios": [
        {"name": "fig5", "seed": 42, "params": {"servers": "6"},
         "summary": {"appends_per_s": 12345.0, "p99_us": 800.5},
         "virtual_end_us": 400000.0,
         "metrics": {"counters": [], "gauges": []}}]}|}
  in
  let p = R.parse v1 in
  Alcotest.(check int) "version" 1 p.R.p_version;
  let s = List.hd p.R.p_scenarios in
  Alcotest.(check string) "name" "fig5" s.R.ps_name;
  Alcotest.(check int) "seed" 42 s.R.ps_seed;
  Alcotest.(check (list (pair string (float 1e-9))))
    "summary" [ ("appends_per_s", 12345.); ("p99_us", 800.5) ]
    s.R.ps_summary;
  check_bool "no perf in v1" true (s.R.ps_perf = None);
  (* Unsupported versions are refused, not misread. *)
  match R.parse {|{"schema_version": 99, "tool": "x", "scenarios": []}|} with
  | _ -> Alcotest.fail "future schema must be rejected"
  | exception Sim.Jin.Parse_error _ -> ()

let test_report_v3_telemetry_sections () =
  let module R = Tango_harness.Report in
  R.clear ();
  R.enable ();
  Fun.protect ~finally:R.clear @@ fun () ->
  let ts = {|{"window_us":1000,"subticks":1,"windows":2,"from":0,"starts":[0,1000],"series":[]}|} in
  let alerts = {|[{"time_us":2000,"monitor":"m","firing":true,"burn_fast":4,"burn_slow":4,"value":9}]|} in
  R.add_scenario ~name:"with-telemetry" ~seed:1 ~virtual_end_us:2_000. ~metrics_json:"{}"
    ~timeseries_json:ts ~alerts_json:alerts ();
  R.add_scenario ~name:"plain" ~seed:2 ~virtual_end_us:0. ~metrics_json:"{}" ();
  let doc = R.to_json () in
  (* the sections embed unquoted — the document must stay parseable *)
  let p = R.parse doc in
  Alcotest.(check int) "version" 3 p.R.p_version;
  let s1 = List.hd p.R.p_scenarios and s2 = List.nth p.R.p_scenarios 1 in
  check_bool "timeseries section present" true s1.R.ps_has_timeseries;
  Alcotest.(check (option int)) "one alert" (Some 1) s1.R.ps_alerts;
  check_bool "plain scenario has no timeseries" false s2.R.ps_has_timeseries;
  Alcotest.(check (option int)) "plain scenario has no alerts" None s2.R.ps_alerts;
  (* v2 documents (no telemetry keys) still decode *)
  let v2 =
    {|{"schema_version": 2, "tool": "tango-bench", "scenarios": [
        {"name": "fig5", "seed": 7, "params": {},
         "summary": {"ops": 1.0}, "virtual_end_us": 10.0, "metrics": {}}]}|}
  in
  let p2 = R.parse v2 in
  let s = List.hd p2.R.p_scenarios in
  check_bool "v2 scenario: no timeseries" false s.R.ps_has_timeseries;
  Alcotest.(check (option int)) "v2 scenario: no alerts" None s.R.ps_alerts

(* ------------------------------------------------------------------ *)
(* Satellite: telemetry determinism end to end                        *)
(* ------------------------------------------------------------------ *)

(* Two same-seed runs of a small clustered workload with the whole
   telemetry plane armed — timeseries ticker, burn-rate monitors, and
   the flight recorder — must produce byte-identical dumps of all
   three. This is the unit-scale version of the CI gate on
   [tangoctl slo] output. *)
let test_telemetry_determinism () =
  let scenario () =
    Sim.Flight.set_enabled true;
    Fun.protect ~finally:(fun () -> Sim.Flight.set_enabled false) @@ fun () ->
    Sim.Engine.run ~seed:11 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:4 () in
        let client = Corfu.Cluster.new_client cluster ~name:"app" in
        Sim.Timeseries.start ~window_us:5_000. ();
        ignore
          (Sim.Slo.monitor ~name:"append-p99" ~series:"hist:app.append.e2e_us" ~col:"p99"
             ~threshold:200. ~objective:0.5 ~fast_windows:2 ~slow_windows:4 ~burn:1. ());
        for i = 1 to 60 do
          ignore (Corfu.Client.append client ~streams:[] (Bytes.of_string (string_of_int i)));
          Sim.Engine.sleep 500.
        done;
        Sim.Flight.snapshot ~reason:"end");
    (Sim.Timeseries.to_json (), Sim.Slo.alerts_json (), Sim.Flight.dump_json ())
  in
  let ts1, al1, fl1 = scenario () in
  let ts2, al2, fl2 = scenario () in
  check_bool "timeseries dump non-trivial" true (String.length ts1 > 500);
  Alcotest.(check string) "timeseries byte-identical" ts1 ts2;
  Alcotest.(check string) "alert stream byte-identical" al1 al2;
  Alcotest.(check string) "flight dump byte-identical" fl1 fl2

let () =
  Alcotest.run "harness"
    [
      ( "load",
        [
          Alcotest.test_case "closed loop throughput" `Quick test_closed_loop_throughput;
          Alcotest.test_case "closed loop goodput" `Quick test_closed_loop_goodput;
          Alcotest.test_case "warmup excluded" `Quick test_closed_loop_warmup_excluded;
          Alcotest.test_case "open loop rate" `Quick test_open_loop_rate;
          Alcotest.test_case "outstanding cap" `Quick test_open_loop_outstanding_cap;
          Alcotest.test_case "open loop rejects bad rate" `Quick test_open_loop_invalid_rate;
          Alcotest.test_case "open loop near-zero rate" `Quick test_open_loop_rate_near_zero;
          Alcotest.test_case "open loop saturated cap" `Quick test_open_loop_saturated_cap;
          Alcotest.test_case "open loop window boundary" `Quick test_open_loop_window_boundary;
          Alcotest.test_case "measure counter" `Quick test_measure_counter;
          Alcotest.test_case "report samples" `Quick test_report_samples;
        ] );
      ( "population",
        [
          Alcotest.test_case "conservation" `Quick test_population_conservation;
          Alcotest.test_case "drops under tight cap" `Quick test_population_drops_under_cap;
          Alcotest.test_case "deterministic" `Quick test_population_deterministic;
          Alcotest.test_case "sharded conservation and determinism" `Quick
            test_population_sharded;
          Alcotest.test_case "rejects bad config" `Quick test_population_invalid_cfg;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "sequential histories" `Quick test_lin_sequential_ok;
          Alcotest.test_case "stale read rejected" `Quick test_lin_stale_read_rejected;
          Alcotest.test_case "concurrent flexibility" `Quick test_lin_concurrent_flexibility;
          Alcotest.test_case "write ordering" `Quick test_lin_write_order;
          Alcotest.test_case "rejects bad events" `Quick test_lin_rejects_bad_event;
          Alcotest.test_case "compare-and-swap" `Quick test_lin_cas;
          Alcotest.test_case "history beyond 62 ops" `Quick test_lin_long_history;
          Alcotest.test_case "work limit trips" `Quick test_lin_work_limit;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "durability" `Quick test_verifier_durability;
          Alcotest.test_case "hole freedom" `Quick test_verifier_hole_freedom;
          Alcotest.test_case "stream order" `Quick test_verifier_stream_order;
          Alcotest.test_case "convergence and atomicity" `Quick
            test_verifier_convergence_and_atomicity;
          Alcotest.test_case "pathological histories" `Quick test_verifier_pathological_histories;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean smoke" `Quick test_fuzz_clean_smoke;
          Alcotest.test_case "deterministic replay" `Quick test_fuzz_deterministic_replay;
          Alcotest.test_case "artifact round-trip" `Quick test_fuzz_artifact_roundtrip;
          Alcotest.test_case "finds and shrinks injected bug" `Slow test_fuzz_finds_injected_bug;
          Alcotest.test_case "report schema" `Quick test_fuzz_report_schema;
        ] );
      ( "spec",
        [
          Alcotest.test_case "clean and deterministic with specs armed" `Quick
            test_spec_clean_and_deterministic;
          Alcotest.test_case "commit-liveness fires on lost rebuild scan" `Slow
            test_spec_commit_liveness_fires;
          Alcotest.test_case "read-committed fires on blind commit apply" `Quick
            test_spec_read_committed_fires;
          Alcotest.test_case "reconfig-termination fires on stalled takeover" `Quick
            test_spec_reconfig_termination_fires;
          Alcotest.test_case "names round-trip" `Quick test_spec_names_roundtrip;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "built-ins run clean" `Slow test_scenario_builtins_run_clean;
        ] );
      ( "report",
        [
          Alcotest.test_case "v2 round-trip with perf" `Quick test_report_v2_roundtrip;
          Alcotest.test_case "v1 documents still decode" `Quick test_report_v1_decode;
          Alcotest.test_case "v3 telemetry sections" `Quick test_report_v3_telemetry_sections;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "end-to-end determinism" `Quick test_telemetry_determinism ] );
      ( "fault-plane",
        [
          Alcotest.test_case "linearizable across sequencer failover" `Quick
            test_lin_across_sequencer_failover;
          Alcotest.test_case "linearizable across storage crash" `Quick
            test_lin_across_storage_crash;
        ] );
    ]
