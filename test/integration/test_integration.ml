(* Cross-layer integration and fault-injection tests: transactions
   riding through sequencer failover, holes punched under load, GC
   concurrent with writers, and many objects multiplexed on one log. *)

open Tango_objects

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_cluster ?(seed = 77) ?(servers = 6) body =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      body cluster)

let runtime cluster name = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name)

(* ------------------------------------------------------------------ *)
(* Sequencer failover under transactional load                        *)
(* ------------------------------------------------------------------ *)

let test_failover_under_transactions () =
  with_cluster (fun cluster ->
      let clients = 3 in
      let committed = ref 0 in
      let finished = ref 0 in
      let views = ref [] in
      for i = 1 to clients do
        let rt = runtime cluster (Printf.sprintf "app-%d" i) in
        let reg = Tango_register.attach rt ~oid:1 in
        views := reg :: !views;
        Sim.Engine.spawn (fun () ->
            for _ = 1 to 15 do
              Tango.Runtime.begin_tx rt;
              let v = Tango_register.read reg in
              Tango_register.write reg (v + 1);
              (match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> incr committed
              | Tango.Runtime.Aborted -> ());
              incr finished
            done)
      done;
      (* Replace the sequencer twice while the increments fly. *)
      Sim.Engine.sleep 5_000.;
      let e1 = Corfu.Cluster.replace_sequencer cluster in
      Sim.Engine.sleep 20_000.;
      let e2 = Corfu.Cluster.replace_sequencer cluster in
      check_int "epochs advance" 1 (e2 - e1);
      Sim.Engine.sleep 10_000_000.;
      check_int "every transaction finished" (clients * 15) !finished;
      (* Serializability: the register counts exactly the commits. *)
      List.iter
        (fun reg -> check_int "register equals committed count" !committed (Tango_register.read reg))
        !views;
      check_bool "some commits happened" true (!committed > 0))

(* ------------------------------------------------------------------ *)
(* Holes punched under transactional load                             *)
(* ------------------------------------------------------------------ *)

let test_holes_under_load () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let m1 = Tango_map.attach rt1 ~oid:1 in
      let m2 = Tango_map.attach rt2 ~oid:1 in
      let saboteur = Corfu.Cluster.new_client cluster ~name:"saboteur" in
      (* A crashed client keeps taking offsets on the map's stream and
         never writing them. *)
      Sim.Engine.spawn (fun () ->
          for _ = 1 to 10 do
            Sim.Engine.sleep 2_000.;
            let (_ : Corfu.Sequencer.response) =
              Sim.Net.call ~from:(Corfu.Client.host saboteur)
                (Corfu.Sequencer.increment_service (Corfu.Cluster.sequencer cluster))
                { Corfu.Sequencer.iepoch = 0; istreams = [ 1 ]; icount = 1 }
            in
            ()
          done);
      let writes = 30 in
      Sim.Engine.spawn (fun () ->
          for i = 1 to writes do
            Tango_map.put m1 (Printf.sprintf "k%d" i) (string_of_int i);
            Sim.Engine.sleep 1_000.
          done);
      (* Readers resolve the holes (100 ms fill timeout) and converge. *)
      Sim.Engine.sleep 500_000.;
      check_int "all writes visible on the other view" writes (Tango_map.size m2);
      check_int "views agree" (Tango_map.size m2) (Tango_map.size m1))

(* ------------------------------------------------------------------ *)
(* GC while writers keep going                                        *)
(* ------------------------------------------------------------------ *)

let test_gc_under_load () =
  with_cluster (fun cluster ->
      let rt = Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"app") in
      let dir = Tango.Directory.attach rt in
      let oid = Tango.Directory.declare dir "set" in
      let s = Tango_set.attach rt ~oid in
      let stop = ref false in
      Sim.Engine.spawn (fun () ->
          let i = ref 0 in
          while not !stop do
            incr i;
            Tango_set.add s (Printf.sprintf "elt%03d" !i);
            Sim.Engine.sleep 500.
          done);
      Sim.Engine.sleep 50_000.;
      (* Checkpoint + forget + collect while the writer continues. *)
      ignore (Tango_set.cardinal s);
      let info = Tango.Runtime.checkpoint rt ~oid in
      let safe = info.Tango.Runtime.ckpt_base + 1 in
      Tango.Directory.forget dir ~oid ~below:safe;
      ignore (Tango.Runtime.checkpoint rt ~oid:Tango.Directory.oid);
      Tango.Directory.forget dir ~oid:Tango.Directory.oid ~below:safe;
      let trimmed = Tango.Directory.collect dir in
      check_bool "log was trimmed" true (trimmed > 0);
      Sim.Engine.sleep 50_000.;
      stop := true;
      Sim.Engine.sleep 5_000.;
      let expected = Tango_set.cardinal s in
      (* A cold client recovers checkpoint + post-checkpoint writes. *)
      let rt2 = runtime cluster "cold" in
      let s2 = Tango_set.attach rt2 ~oid in
      check_int "cold view complete after gc" expected (Tango_set.cardinal s2);
      check_bool "saw many elements" true (expected > 50))

(* ------------------------------------------------------------------ *)
(* Many objects multiplexed on one runtime                            *)
(* ------------------------------------------------------------------ *)

let test_object_zoo_on_one_log () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "zoo-1" in
      let rt2 = runtime cluster "zoo-2" in
      let dir1 = Tango.Directory.attach rt1 in
      let dir2 = Tango.Directory.attach rt2 in
      let oid1 name = Tango.Directory.declare dir1 name in
      let reg1 = Tango_register.attach rt1 ~oid:(oid1 "reg") in
      let ctr1 = Tango_counter.attach rt1 ~oid:(oid1 "ctr") in
      let map1 = Tango_map.attach rt1 ~oid:(oid1 "map") in
      let set1 = Tango_set.attach rt1 ~oid:(oid1 "set") in
      let q1 = Tango_queue.attach rt1 ~oid:(oid1 "queue") in
      let zk1 = Tango_zk.attach rt1 ~oid:(oid1 "zk") in
      let oid2 name = Option.get (Tango.Directory.lookup dir2 name) in
      let reg2 = Tango_register.attach rt2 ~oid:(oid2 "reg") in
      let ctr2 = Tango_counter.attach rt2 ~oid:(oid2 "ctr") in
      let map2 = Tango_map.attach rt2 ~oid:(oid2 "map") in
      let set2 = Tango_set.attach rt2 ~oid:(oid2 "set") in
      let q2 = Tango_queue.attach rt2 ~oid:(oid2 "queue") in
      let zk2 = Tango_zk.attach rt2 ~oid:(oid2 "zk") in
      (* One transaction across five different data structures. *)
      Tango.Runtime.begin_tx rt1;
      Tango_register.write reg1 7;
      Tango_counter.add ctr1 3;
      Tango_map.put map1 "k" "v";
      Tango_set.add set1 "member";
      Tango_queue.enqueue q1 "work";
      check_bool "tx committed" true (Tango.Runtime.end_tx rt1 = Tango.Runtime.Committed);
      (match Tango_zk.create zk1 "/multiplexed" "yes" with Ok _ -> () | Error _ -> Alcotest.fail "zk");
      (* Everything is visible, atomically, on the other client. *)
      check_int "register" 7 (Tango_register.read reg2);
      check_int "counter" 3 (Tango_counter.get ctr2);
      Alcotest.(check (option string)) "map" (Some "v") (Tango_map.get map2 "k");
      check_bool "set" true (Tango_set.mem set2 "member");
      Alcotest.(check (option string)) "queue" (Some "work") (Tango_queue.dequeue q2);
      check_bool "zk" true (Tango_zk.exists zk2 "/multiplexed"))

(* ------------------------------------------------------------------ *)
(* Remote-write storm against a consumer running local transactions   *)
(* ------------------------------------------------------------------ *)

let test_remote_write_storm () =
  with_cluster (fun cluster ->
      let consumer_rt = runtime cluster "consumer" in
      let inbox = Tango_map.attach consumer_rt ~oid:10 ~needs_decision:true in
      let local = Tango_map.attach consumer_rt ~oid:11 in
      let producers = 3 in
      let sent = ref 0 in
      for p = 1 to producers do
        let rt = runtime cluster (Printf.sprintf "producer-%d" p) in
        let src = Tango_map.attach rt ~oid:(20 + p) in
        Tango_map.put src "seed" "s";
        Sim.Engine.spawn (fun () ->
            for i = 1 to 10 do
              Tango.Runtime.begin_tx rt;
              ignore (Tango_map.get src "seed");
              Tango_map.remote_put rt ~oid:10 (Printf.sprintf "p%d-%d" p i) "x";
              match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> incr sent
              | Tango.Runtime.Aborted -> ()
            done)
      done;
      (* Meanwhile the consumer hammers its local map. *)
      let local_commits = ref 0 in
      Sim.Engine.spawn (fun () ->
          for i = 1 to 50 do
            Tango.Runtime.begin_tx consumer_rt;
            ignore (Tango_map.get local "mine");
            Tango_map.put local "mine" (string_of_int i);
            match Tango.Runtime.end_tx consumer_rt with
            | Tango.Runtime.Committed -> incr local_commits
            | Tango.Runtime.Aborted -> ()
          done);
      Sim.Engine.sleep 3_000_000.;
      check_int "all remote writes arrived" !sent (Tango_map.size inbox);
      check_int "local transactions unimpeded" 50 !local_commits)

(* ------------------------------------------------------------------ *)
(* Collaborative remote-read transactions (§4.1 D, future work)       *)
(* ------------------------------------------------------------------ *)

let test_remote_read_commit () =
  with_cluster (fun cluster ->
      (* A hosts map 1; B hosts map 2 and serves reads for it. *)
      let rt_a = runtime cluster "node-a" in
      let rt_b = runtime cluster "node-b" in
      let m1 = Tango_map.attach rt_a ~oid:1 in
      let m2 = Tango_map.attach rt_b ~oid:2 in
      Tango_map.serve_reads m2;
      Tango.Runtime.connect_peer rt_a ~oid:2 (Tango.Runtime.remote_read_service rt_b);
      Tango_map.put m2 "rate" "1.25";
      Tango_map.put m1 "balance" "100";
      (* the peer answers from its current view: freshen it *)
      ignore (Tango_map.get m2 "rate");
      (* A's transaction reads the remote rate and writes locally. *)
      Tango.Runtime.begin_tx rt_a;
      let balance = Option.get (Tango_map.get m1 "balance") in
      let rate = Option.get (Tango_map.get_remote rt_a ~oid:2 "rate") in
      Tango_map.put m1 "converted" (Printf.sprintf "%s*%s" balance rate);
      (match Tango.Runtime.end_tx rt_a with
      | Tango.Runtime.Committed -> ()
      | Tango.Runtime.Aborted -> Alcotest.fail "quiet remote-read tx must commit");
      Alcotest.(check (option string)) "applied" (Some "100*1.25") (Tango_map.get m1 "converted"))

let test_remote_read_conflict_aborts () =
  with_cluster (fun cluster ->
      let rt_a = runtime cluster "node-a" in
      let rt_b = runtime cluster "node-b" in
      let m1 = Tango_map.attach rt_a ~oid:1 in
      let m2 = Tango_map.attach rt_b ~oid:2 in
      Tango_map.serve_reads m2;
      Tango.Runtime.connect_peer rt_a ~oid:2 (Tango.Runtime.remote_read_service rt_b);
      Tango_map.put m2 "rate" "1.25";
      ignore (Tango_map.get m2 "rate");
      Tango.Runtime.begin_tx rt_a;
      let _rate = Tango_map.get_remote rt_a ~oid:2 "rate" in
      (* The rate changes before the commit record lands: the remote
         read is stale and the collaborative validation must abort. *)
      Tango_map.put m2 "rate" "1.60";
      Tango_map.put m1 "converted" "stale!";
      (match Tango.Runtime.end_tx rt_a with
      | Tango.Runtime.Aborted -> ()
      | Tango.Runtime.Committed -> Alcotest.fail "stale remote read must abort");
      Alcotest.(check (option string)) "write not applied" None (Tango_map.get m1 "converted"))

let test_remote_read_fully_remote_generator () =
  (* The generator hosts nothing involved: remote read from B, remote
     write to D; the outcome is combined from partial verdicts over
     the log and picked up by scanning a coordination stream. *)
  with_cluster (fun cluster ->
      let rt_b = runtime cluster "node-b" in
      let rt_d = runtime cluster "node-d" in
      let rt_c = runtime cluster "thin-client" in
      let m2 = Tango_map.attach rt_b ~oid:2 in
      let m3 = Tango_map.attach rt_d ~oid:3 ~needs_decision:true in
      Tango_map.serve_reads m2;
      Tango.Runtime.connect_peer rt_c ~oid:2 (Tango.Runtime.remote_read_service rt_b);
      Tango_map.put m2 "config" "blue";
      ignore (Tango_map.get m2 "config");
      Tango.Runtime.begin_tx rt_c;
      let v = Option.get (Tango_map.get_remote rt_c ~oid:2 "config") in
      Tango_map.remote_put rt_c ~oid:3 "copied" v;
      (match Tango.Runtime.end_tx rt_c with
      | Tango.Runtime.Committed -> ()
      | Tango.Runtime.Aborted -> Alcotest.fail "quiet fully-remote tx must commit");
      Alcotest.(check (option string)) "landed at D" (Some "blue") (Tango_map.get m3 "copied"))

let test_remote_read_multi_host_verdicts () =
  (* Read set spans two hosts; both publish partial verdicts and any
     participant combines them. *)
  with_cluster (fun cluster ->
      let rt_a = runtime cluster "node-a" in
      let rt_b = runtime cluster "node-b" in
      let rt_f = runtime cluster "node-f" in
      let m1 = Tango_map.attach rt_a ~oid:1 in
      let m2 = Tango_map.attach rt_b ~oid:2 in
      let sink = Tango_map.attach rt_f ~oid:9 ~needs_decision:true in
      Tango_map.serve_reads m2;
      Tango.Runtime.connect_peer rt_a ~oid:2 (Tango.Runtime.remote_read_service rt_b);
      Tango_map.put m1 "x" "1";
      Tango_map.put m2 "y" "2";
      ignore (Tango_map.get m2 "y");
      Tango.Runtime.begin_tx rt_a;
      let x = Option.get (Tango_map.get m1 "x") in
      let y = Option.get (Tango_map.get_remote rt_a ~oid:2 "y") in
      Tango_map.remote_put rt_a ~oid:9 "sum" (x ^ "+" ^ y);
      (match Tango.Runtime.end_tx rt_a with
      | Tango.Runtime.Committed -> ()
      | Tango.Runtime.Aborted -> Alcotest.fail "must commit");
      Alcotest.(check (option string)) "combined and applied" (Some "1+2")
        (Tango_map.get sink "sum");
      (* and a conflicting run aborts everywhere *)
      Tango.Runtime.begin_tx rt_a;
      ignore (Tango_map.get m1 "x");
      ignore (Tango_map.get_remote rt_a ~oid:2 "y");
      Tango_map.put m2 "y" "9";
      Tango_map.remote_put rt_a ~oid:9 "sum2" "nope";
      (match Tango.Runtime.end_tx rt_a with
      | Tango.Runtime.Aborted -> ()
      | Tango.Runtime.Committed -> Alcotest.fail "stale y must abort");
      Alcotest.(check (option string)) "aborted write absent" None (Tango_map.get sink "sum2"))

(* ------------------------------------------------------------------ *)
(* Convergence property                                               *)
(* ------------------------------------------------------------------ *)

let prop_views_converge =
  QCheck.Test.make ~name:"replicated views converge under mixed load" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      Sim.Engine.run ~seed (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let nclients = 3 in
          let views = ref [] in
          for i = 1 to nclients do
            let rt = runtime cluster (Printf.sprintf "c%d" i) in
            let map = Tango_map.attach rt ~oid:1 in
            let set = Tango_set.attach rt ~oid:2 in
            views := (rt, map, set) :: !views;
            let rng = Sim.Rng.split (Sim.Engine.rng ()) in
            Sim.Engine.spawn (fun () ->
                for n = 1 to 20 do
                  let k = Printf.sprintf "k%d" (Sim.Rng.int rng 8) in
                  match Sim.Rng.int rng 3 with
                  | 0 -> Tango_map.put map k (Printf.sprintf "%d.%d" i n)
                  | 1 -> Tango_set.add set k
                  | _ -> (
                      Tango.Runtime.begin_tx rt;
                      (match Tango_map.get map k with
                      | Some v -> Tango_map.put map k (v ^ "!")
                      | None -> Tango_map.put map k "tx");
                      Tango_set.add set ("tx-" ^ k);
                      match Tango.Runtime.end_tx rt with
                      | Tango.Runtime.Committed | Tango.Runtime.Aborted -> ())
                done)
          done;
          Sim.Engine.sleep 10_000_000.;
          let states =
            List.map
              (fun (_, map, set) -> (Tango_map.bindings map, Tango_set.elements set))
              !views
          in
          match states with
          | first :: rest -> List.for_all (fun s -> s = first) rest
          | [] -> false))

let test_whole_system_determinism () =
  (* Identical seeds must reproduce the run bit-for-bit: same commit
     counts, same final states, same virtual end time. *)
  let run () =
    Sim.Engine.run ~seed:123 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:6 () in
        Corfu.Cluster.start_checkpoint_scribe cluster ~interval_us:10_000.;
        let commits = ref 0 in
        let maps = ref [] in
        for i = 1 to 3 do
          let rt = runtime cluster (Printf.sprintf "c%d" i) in
          let m = Tango_map.attach rt ~oid:1 in
          maps := m :: !maps;
          let rng = Sim.Rng.split (Sim.Engine.rng ()) in
          Sim.Engine.spawn (fun () ->
              for n = 1 to 15 do
                Tango.Runtime.begin_tx rt;
                let k = Printf.sprintf "k%d" (Sim.Rng.int rng 5) in
                (match Tango_map.get m k with
                | Some v -> Tango_map.put m k (v ^ string_of_int n)
                | None -> Tango_map.put m k "0");
                match Tango.Runtime.end_tx rt with
                | Tango.Runtime.Committed -> incr commits
                | Tango.Runtime.Aborted -> ()
              done)
        done;
        Sim.Engine.sleep 5_000_000.;
        let state = Tango_map.bindings (List.hd !maps) in
        (!commits, state, Sim.Engine.now ()))
  in
  let c1, s1, t1 = run () in
  let c2, s2, t2 = run () in
  check_int "same commits" c1 c2;
  check_bool "same final state" true (s1 = s2);
  check_bool "same virtual end time" true (t1 = t2);
  check_bool "something happened" true (c1 > 0)

(* The paper's §3.1 claim, checked from observations: histories of a
   register with views on several machines are linearizable. *)
module Lin = Tango_harness.Linearizability

let prop_register_linearizable =
  QCheck.Test.make ~name:"register histories are linearizable" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      Sim.Engine.run ~seed (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let events = ref [] in
          let record started finished op = events := { Lin.started; finished; op } :: !events in
          for i = 1 to 3 do
            let rt = runtime cluster (Printf.sprintf "c%d" i) in
            let reg = Tango_register.attach rt ~oid:1 in
            let rng = Sim.Rng.split (Sim.Engine.rng ()) in
            Sim.Engine.spawn (fun () ->
                for n = 1 to 6 do
                  let t0 = Sim.Engine.now () in
                  if Sim.Rng.bool rng 0.4 then begin
                    let v = (i * 100) + n in
                    Tango_register.write reg v;
                    record t0 (Sim.Engine.now ()) (Lin.Write v)
                  end
                  else begin
                    let v = Tango_register.read reg in
                    record t0 (Sim.Engine.now ()) (Lin.Read v)
                  end;
                  Sim.Engine.sleep (Sim.Rng.float rng 500.)
                done)
          done;
          Sim.Engine.sleep 10_000_000.;
          Lin.check_register ~initial:0 !events))

let test_linearizable_across_scale_out () =
  (* Register histories must stay linearizable while the log scales
     out underneath the clients: writers and readers straddle the
     epoch bump, and reads span both segments' offsets. *)
  Sim.Engine.run ~seed:31 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:4 () in
      let events = ref [] in
      let record started finished op = events := { Lin.started; finished; op } :: !events in
      for i = 1 to 3 do
        let rt = runtime cluster (Printf.sprintf "c%d" i) in
        let reg = Tango_register.attach rt ~oid:1 in
        Sim.Engine.spawn (fun () ->
            for n = 1 to 8 do
              let t0 = Sim.Engine.now () in
              if n mod 2 = i mod 2 then begin
                let v = (i * 100) + n in
                Tango_register.write reg v;
                record t0 (Sim.Engine.now ()) (Lin.Write v)
              end
              else begin
                let v = Tango_register.read reg in
                record t0 (Sim.Engine.now ()) (Lin.Read v)
              end;
              Sim.Engine.sleep 300.
            done)
      done;
      Sim.Engine.sleep 2_000.;
      ignore (Corfu.Cluster.scale_out cluster ~add_servers:4 : Corfu.Types.epoch);
      Sim.Engine.sleep 10_000_000.;
      check_int "all ops finished" 24 (List.length !events);
      let proj = Corfu.Auxiliary.latest (Corfu.Cluster.auxiliary cluster) in
      check_int "map is segmented" 2 (Corfu.Projection.num_segments proj);
      check_bool "history linearizable across the scale-out" true
        (Lin.check_register ~initial:0 !events))

let () =
  Alcotest.run "integration"
    [
      ( "chaos",
        [
          Alcotest.test_case "failover under transactions" `Quick
            test_failover_under_transactions;
          Alcotest.test_case "holes under load" `Quick test_holes_under_load;
          Alcotest.test_case "gc under load" `Quick test_gc_under_load;
          Alcotest.test_case "remote-write storm" `Quick test_remote_write_storm;
          Alcotest.test_case "whole-system determinism" `Quick test_whole_system_determinism;
          Alcotest.test_case "linearizable across scale-out" `Quick
            test_linearizable_across_scale_out;
        ] );
      ("multiplexing", [ Alcotest.test_case "object zoo on one log" `Quick test_object_zoo_on_one_log ]);
      ( "collaborative-remote-reads",
        [
          Alcotest.test_case "remote read commits" `Quick test_remote_read_commit;
          Alcotest.test_case "stale remote read aborts" `Quick test_remote_read_conflict_aborts;
          Alcotest.test_case "fully-remote generator" `Quick test_remote_read_fully_remote_generator;
          Alcotest.test_case "multi-host verdicts" `Quick test_remote_read_multi_host_verdicts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_views_converge; prop_register_linearizable ] );
    ]
