#!/usr/bin/env bash
# Scale-up regression gate: compare a fresh `bench/main.exe scale-up
# --json` report against the committed baseline (BENCH_scaleup.json).
#
#   usage: check_scaleup.sh BASELINE.json NEW.json [NEW2.json ...]
#
# Gates, from the aggregate "scale-up" scenario of the NEW reports:
#   - determinism_ok   : must be 1 in every new report — the bench's
#                        own single-shard-fidelity and multi-domain
#                        two-run digest gates both passed.
#   - clients          : must stay >= 100000 (the 10^5-client floor).
#   - pop_speedup      : best across NEW must be >= 1.2 — the
#                        aggregate population model must beat the
#                        fiber-per-client build by a clear margin.
#   - parallel_gain    : ONLY when the runner reports cores > 1, best
#                        across NEW must be > 1.0 (events/wall-s at the
#                        best domain count beats 1 domain). On a
#                        single-core runner domains can only add
#                        barrier overhead, so the gate is skipped —
#                        determinism and the sweep still run.
# And per scale-up/domains-N scenario present in the baseline:
#   - completed        : within 10% of baseline (virtual-time results
#                        are load-bearing; wall-clock ones are not).
#
# Updating the baseline (after an intentional engine/model change): run
#   dune build && ./_build/default/bench/main.exe scale-up --json BENCH_scaleup.json
# on a quiet machine, eyeball the summary diff against the previous
# baseline (completed/throughput/p99 are deterministic per seed; only
# wall-clock fields move between machines), and commit it with the
# change that shifted it.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASELINE.json NEW.json [NEW2.json ...]" >&2
  exit 2
fi

baseline=$1
shift

fail=0

det=$(jq -rs '[.[].scenarios[] | select(.name == "scale-up") | .summary.determinism_ok] | min' "$@")
if [ "$det" != "1" ]; then
  echo "FAIL determinism_ok: expected 1 in every report, got $det" >&2
  fail=1
else
  echo "ok   determinism_ok          1 (single-shard fidelity + multi-domain two-run)"
fi

clients=$(jq -rs '[.[].scenarios[] | select(.name == "scale-up") | .summary.clients] | min' "$@")
if ! jq -ne --argjson c "$clients" '$c >= 100000' >/dev/null; then
  echo "FAIL clients: $clients < 100000" >&2
  fail=1
else
  echo "ok   clients                 $clients"
fi

speedup=$(jq -rs '[.[].scenarios[] | select(.name == "scale-up") | .summary.pop_speedup] | max' "$@")
if ! jq -ne --argjson s "$speedup" '$s >= 1.2' >/dev/null; then
  echo "FAIL pop_speedup: $speedup < 1.2 over fiber-per-client" >&2
  fail=1
else
  echo "ok   pop_speedup             ${speedup}x over fiber-per-client"
fi

cores=$(jq -rs '[.[].scenarios[] | select(.name == "scale-up") | .summary.cores] | max' "$@")
if jq -ne --argjson c "$cores" '$c > 1' >/dev/null; then
  gain=$(jq -rs '[.[].scenarios[] | select(.name == "scale-up") | .summary.parallel_gain] | max' "$@")
  if ! jq -ne --argjson g "$gain" '$g > 1.0' >/dev/null; then
    echo "FAIL parallel_gain: $gain <= 1.0 with $cores cores" >&2
    fail=1
  else
    echo "ok   parallel_gain           ${gain}x ($cores cores)"
  fi
else
  echo "skip parallel_gain           (single-core runner: domains only add barrier overhead)"
fi

sweeps=$(jq -r '.scenarios[] | select(.name | startswith("scale-up/domains-")) | .name' "$baseline")
for s in $sweeps; do
  b_done=$(jq -r --arg n "$s" '.scenarios[] | select(.name == $n) | .summary.completed' "$baseline")
  n_done=$(jq -rs --arg n "$s" '[.[].scenarios[] | select(.name == $n) | .summary.completed] | min' "$@")
  if [ "$n_done" = "null" ]; then
    echo "FAIL $s: scenario missing from new report" >&2
    fail=1
  elif ! jq -ne --argjson new "$n_done" --argjson base "$b_done" \
      '$new >= $base * 0.9 and $new <= $base * 1.1' >/dev/null; then
    echo "FAIL $s: completed $n_done outside 10% of baseline $b_done" >&2
    fail=1
  else
    printf 'ok   %-24s %8s completed (baseline %s)\n' "$s" "$n_done" "$b_done"
  fi
done

exit $fail
