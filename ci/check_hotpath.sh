#!/usr/bin/env bash
# Hot-path regression gate: compare a fresh `bench/main.exe micro --json`
# report against the committed baseline (BENCH_hotpath.json).
#
#   usage: check_hotpath.sh BASELINE.json NEW.json [NEW2.json ...]
#
# Gates, per micro/* kernel present in the baseline:
#   - ns_per_op        : best (minimum) across the NEW reports must be
#                        <= 1.15 x baseline — >15% wall-clock regression
#                        fails. Pass two fresh runs to absorb machine
#                        noise; the minimum is the machine's real speed.
#   - minor_words_per_op: worst (maximum) across the NEW reports must be
#                        <= baseline + 0.5 words. Allocation counts are
#                        deterministic, so ANY regression fails; the 0.5
#                        slack only covers amortised-growth rounding.
# And for the whole-run scenario:
#   - events-wall      : best events_per_wall_s must be >= baseline / 1.15.
#
# Updating the baseline (after an intentional hot-path change): run
#   dune build && ./_build/default/bench/main.exe micro --json BENCH_hotpath.json
# three times on a quiet machine, keep the report whose ns/op numbers
# are the SLOWEST of the three (the noise envelope — it is what fresh
# best-of-N runs are compared against), eyeball them against the
# previous baseline, and commit the new file together with the change
# that shifted it — the diff of minor_words_per_op is the review
# artifact. The minor-word counts are deterministic and must be
# identical across the three runs; if they differ, the kernel under
# measurement is not allocation-stable and needs fixing first.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASELINE.json NEW.json [NEW2.json ...]" >&2
  exit 2
fi

baseline=$1
shift

fail=0

kernels=$(jq -r '.scenarios[] | select(.summary.ns_per_op != null) | .name' "$baseline")
for k in $kernels; do
  b_ns=$(jq -r --arg n "$k" '.scenarios[] | select(.name == $n) | .summary.ns_per_op' "$baseline")
  b_w=$(jq -r --arg n "$k" '.scenarios[] | select(.name == $n) | .summary.minor_words_per_op' "$baseline")
  n_ns=$(jq -rs --arg n "$k" '[.[].scenarios[] | select(.name == $n) | .summary.ns_per_op] | min' "$@")
  n_w=$(jq -rs --arg n "$k" '[.[].scenarios[] | select(.name == $n) | .summary.minor_words_per_op] | max' "$@")
  if [ "$n_ns" = "null" ] || [ "$n_w" = "null" ]; then
    echo "FAIL $k: kernel missing from new report" >&2
    fail=1
    continue
  fi
  ok=1
  if ! jq -ne --argjson new "$n_ns" --argjson base "$b_ns" '$new <= 1.15 * $base' >/dev/null; then
    echo "FAIL $k: ns/op $n_ns > 1.15 x baseline $b_ns" >&2
    fail=1
    ok=0
  fi
  if ! jq -ne --argjson new "$n_w" --argjson base "$b_w" '$new <= $base + 0.5' >/dev/null; then
    echo "FAIL $k: minor-words/op $n_w regressed past baseline $b_w" >&2
    fail=1
    ok=0
  fi
  if [ "$ok" = 1 ]; then
    printf 'ok   %-24s %10s ns/op (baseline %s)  %8s w/op (baseline %s)\n' \
      "$k" "$n_ns" "$b_ns" "$n_w" "$b_w"
  fi
done

b_ev=$(jq -r '.scenarios[] | select(.name == "micro/events-wall") | .summary.events_per_wall_s' "$baseline")
if [ -n "$b_ev" ] && [ "$b_ev" != "null" ]; then
  n_ev=$(jq -rs '[.[].scenarios[] | select(.name == "micro/events-wall") | .summary.events_per_wall_s] | max' "$@")
  if [ "$n_ev" = "null" ]; then
    echo "FAIL events-wall: scenario missing from new report" >&2
    fail=1
  elif ! jq -ne --argjson new "$n_ev" --argjson base "$b_ev" '$new >= $base / 1.15' >/dev/null; then
    echo "FAIL events-wall: $n_ev events/wall-s < baseline $b_ev / 1.15" >&2
    fail=1
  else
    printf 'ok   %-24s %10s events/wall-s (baseline %s)\n' "micro/events-wall" "$n_ev" "$b_ev"
  fi
fi

exit $fail
